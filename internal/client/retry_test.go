package client

import (
	"testing"
	"time"

	"melissa/internal/mesh"
)

func TestRetryDelayBackoffAndCap(t *testing.T) {
	p := RetryPolicy{
		MaxReconnects: 5,
		BaseDelay:     10 * time.Millisecond,
		MaxDelay:      80 * time.Millisecond,
		Multiplier:    2,
		Jitter:        -1, // disable jitter: exact doubling
	}.withDefaults()
	rng := retryRNG(p, 0)
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for attempt, w := range want {
		if got := p.delay(attempt, rng); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
}

func TestRetryDelayDeterministicPerGroup(t *testing.T) {
	p := RetryPolicy{MaxReconnects: 3, Seed: 42}.withDefaults()
	seq := func(group int) []time.Duration {
		rng := retryRNG(p, group)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = p.delay(i, rng)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same group diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different groups drew identical jitter sequences")
	}
}

func TestRetryDefaults(t *testing.T) {
	p := RetryPolicy{MaxReconnects: 1}.withDefaults()
	if p.BaseDelay <= 0 || p.MaxDelay <= 0 || p.Multiplier < 1 || p.Jitter <= 0 || p.AckTimeout <= 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	if (RetryPolicy{}).enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if !(RetryPolicy{MaxReconnects: 1}).enabled() {
		t.Fatal("budget 1 must enable retries")
	}
}

func TestRetainRingEvictsOldest(t *testing.T) {
	var r retainRing
	for step := 0; step < 7; step++ {
		r.push(4, step, [][]float64{{float64(step)}})
	}
	if r.n != 4 {
		t.Fatalf("ring holds %d, want 4", r.n)
	}
	// Steps 3..6 retained, oldest first.
	for i := 0; i < r.n; i++ {
		st := r.at(i)
		if st.step != 3+i {
			t.Fatalf("slot %d: step %d, want %d", i, st.step, 3+i)
		}
		if st.fields[0][0] != float64(3+i) {
			t.Fatalf("slot %d carries stale field %v", i, st.fields[0][0])
		}
	}
}

func TestRetainRingCopiesFields(t *testing.T) {
	var r retainRing
	f := []float64{1, 2, 3}
	r.push(2, 0, [][]float64{f})
	f[0] = 99 // caller reuses its buffer
	if got := r.at(0).fields[0][0]; got != 1 {
		t.Fatalf("ring aliases the caller's buffer: %v", got)
	}
}

// The legacy path (zero retry policy) must carry no retention cost and never
// attempt recovery: retainStep is a no-op.
func TestRetryDisabledNoRetention(t *testing.T) {
	c := &Connection{routes: make([]mesh.Transfer, 1)}
	c.retainStep(0, 0, [][]float64{{1}})
	if c.retain != nil {
		t.Fatal("disabled policy allocated retention state")
	}
}
