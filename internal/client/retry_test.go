package client

import (
	"errors"
	"testing"
	"time"

	"melissa/internal/mesh"
	"melissa/internal/transport"
	"melissa/internal/wire"
)

func TestRetryDelayBackoffAndCap(t *testing.T) {
	p := RetryPolicy{
		MaxReconnects: 5,
		BaseDelay:     10 * time.Millisecond,
		MaxDelay:      80 * time.Millisecond,
		Multiplier:    2,
		Jitter:        -1, // disable jitter: exact doubling
	}.withDefaults()
	rng := retryRNG(p, 0)
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for attempt, w := range want {
		if got := p.delay(attempt, rng); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
}

func TestRetryDelayDeterministicPerGroup(t *testing.T) {
	p := RetryPolicy{MaxReconnects: 3, Seed: 42}.withDefaults()
	seq := func(group int) []time.Duration {
		rng := retryRNG(p, group)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = p.delay(i, rng)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same group diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different groups drew identical jitter sequences")
	}
}

func TestRetryDefaults(t *testing.T) {
	p := RetryPolicy{MaxReconnects: 1}.withDefaults()
	if p.BaseDelay <= 0 || p.MaxDelay <= 0 || p.Multiplier < 1 || p.Jitter <= 0 || p.AckTimeout <= 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	if (RetryPolicy{}).enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if !(RetryPolicy{MaxReconnects: 1}).enabled() {
		t.Fatal("budget 1 must enable retries")
	}
}

func TestRetainRingEvictsOldest(t *testing.T) {
	var r retainRing
	for step := 0; step < 7; step++ {
		r.push(4, step, [][]float64{{float64(step)}})
	}
	if r.n != 4 {
		t.Fatalf("ring holds %d, want 4", r.n)
	}
	// Steps 3..6 retained, oldest first.
	for i := 0; i < r.n; i++ {
		st := r.at(i)
		if st.step != 3+i {
			t.Fatalf("slot %d: step %d, want %d", i, st.step, 3+i)
		}
		if st.fields[0][0] != float64(3+i) {
			t.Fatalf("slot %d carries stale field %v", i, st.fields[0][0])
		}
	}
}

func TestRetainRingCopiesFields(t *testing.T) {
	var r retainRing
	f := []float64{1, 2, 3}
	r.push(2, 0, [][]float64{f})
	f[0] = 99 // caller reuses its buffer
	if got := r.at(0).fields[0][0]; got != 1 {
		t.Fatalf("ring aliases the caller's buffer: %v", got)
	}
}

// The legacy path (zero retry policy) must carry no retention cost and never
// attempt recovery: retainStep is a no-op.
func TestRetryDisabledNoRetention(t *testing.T) {
	c := &Connection{routes: make([]mesh.Transfer, 1)}
	c.retainStep(0, 0, [][]float64{{1}})
	if c.retain != nil {
		t.Fatal("disabled policy allocated retention state")
	}
}

// A restored server whose frontier rolled back past the retention window
// cannot be healed by resending — the discontiguity would leave a silent
// hole in the statistics. resendRank must refuse with errResumeGap (the
// reconnect loop's signal to abort, which escalates the group to the legacy
// full-replay path) exactly when the oldest retained step is beyond ack+1,
// and resend normally at the boundary.
func TestResendRankResumeGap(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	inbox, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer inbox.Close()
	s, err := net.Dial(inbox.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := &Connection{
		routes:  []mesh.Transfer{{ServerRank: 0, Cells: mesh.Partition{Lo: 0, Hi: 1}}},
		senders: []transport.Sender{s},
		retain:  make([]retainRing, 1),
	}
	// Retained window: steps 5 and 6 (everything older evicted).
	c.retain[0].push(2, 5, [][]float64{{5}})
	c.retain[0].push(2, 6, [][]float64{{6}})

	// Server rolled back to step 2: steps 3-4 are gone from both sides.
	err = c.resendRank(0, 2)
	if !errors.Is(err, errResumeGap) {
		t.Fatalf("rollback past retention returned %v, want errResumeGap", err)
	}
	// Boundary: ack+1 == oldest retained — contiguous, both steps resend.
	if err := c.resendRank(0, 4); err != nil {
		t.Fatalf("contiguous resend failed: %v", err)
	}
	for _, want := range []int{5, 6} {
		m, err := inbox.Recv(time.Second)
		if err != nil {
			t.Fatalf("resent step %d never arrived: %v", want, err)
		}
		decoded, err := wire.Decode(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := decoded.(*wire.Data)
		if !ok || d.Timestep != want {
			t.Fatalf("resent frame %T %+v, want Data step %d", decoded, decoded, want)
		}
		if d.Fields[0][0] != float64(want) {
			t.Fatalf("resent step %d carries field %v", want, d.Fields[0][0])
		}
	}
}
