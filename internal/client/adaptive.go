package client

import (
	"math"
	"sync/atomic"
)

// BatchController turns server congestion hints into an effective timestep
// batch size. The server piggybacks its fold-pipeline queue occupancy on the
// reports it already sends the launcher (wire.Report.Backpressure); the
// launcher feeds every hint to one shared controller; and every group
// connection polls the controller at its flush decisions. While the server
// keeps up, batches stay small and data reaches the statistics with minimal
// latency; when the fold pipeline backs up, batches grow towards
// MaxBatchSteps, amortizing framing and syscall overhead exactly when the
// extra throughput is needed, then decay as the backlog clears.
//
// The controller smooths hints with an exponential moving average so one
// spiky report neither doubles every client's batch nor collapses it. It is
// safe for concurrent use: one writer (Observe) and any number of readers.
type BatchController struct {
	level atomic.Uint64 // Float64bits of the smoothed congestion in [0, 1]
}

// observeGain is the EWMA weight of a fresh hint: heavy enough that a few
// congested reports saturate the batch size, light enough that one outlier
// moves it only halfway.
const observeGain = 0.5

// Observe folds one congestion hint (a [0, 1] occupancy fraction; values
// outside are clamped) into the smoothed level.
func (c *BatchController) Observe(hint float64) {
	if math.IsNaN(hint) {
		return
	}
	hint = math.Min(math.Max(hint, 0), 1)
	for {
		old := c.level.Load()
		level := math.Float64frombits(old)
		next := level + observeGain*(hint-level)
		if c.level.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Level returns the smoothed congestion in [0, 1].
func (c *BatchController) Level() float64 {
	return math.Float64frombits(c.level.Load())
}

// Steps maps the smoothed congestion onto an effective batch size in
// [1, maxSteps]: 1 when the server is idle, maxSteps when saturated,
// linear in between (rounded to nearest).
func (c *BatchController) Steps(maxSteps int) int {
	if maxSteps <= 1 {
		return 1
	}
	s := 1 + int(c.Level()*float64(maxSteps-1)+0.5)
	if s < 1 {
		return 1
	}
	if s > maxSteps {
		return maxSteps
	}
	return s
}
