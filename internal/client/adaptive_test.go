package client

import (
	"testing"
	"time"

	"melissa/internal/mesh"
	"melissa/internal/transport"
	"melissa/internal/wire"
)

// TestBatchControllerDynamics: congested hints must grow the effective
// batch size towards the cap, and clear hints must decay it back to 1 —
// the client half of the adaptive-batching loop.
func TestBatchControllerDynamics(t *testing.T) {
	var c BatchController
	const maxSteps = 8
	if got := c.Steps(maxSteps); got != 1 {
		t.Fatalf("idle controller batches %d steps, want 1", got)
	}
	for i := 0; i < 10; i++ {
		c.Observe(1.0)
	}
	if got := c.Steps(maxSteps); got != maxSteps {
		t.Fatalf("saturated controller batches %d steps, want %d", got, maxSteps)
	}
	// One clear report must not collapse the batch all the way back...
	c.Observe(0)
	if got := c.Steps(maxSteps); got <= 1 || got >= maxSteps {
		t.Fatalf("one clear hint moved batch to %d, want strictly between 1 and %d", got, maxSteps)
	}
	// ...but a cleared backlog must decay it to 1.
	for i := 0; i < 10; i++ {
		c.Observe(0)
	}
	if got := c.Steps(maxSteps); got != 1 {
		t.Fatalf("cleared controller batches %d steps, want 1", got)
	}
	// Hints outside [0,1] clamp instead of corrupting the level.
	c.Observe(42)
	if l := c.Level(); l > 1 {
		t.Fatalf("level %v escaped [0,1]", l)
	}
	if got := c.Steps(1); got != 1 {
		t.Fatalf("cap 1 batches %d steps, want 1", got)
	}
}

// frameKind summarizes one received wire frame for the adaptive test.
type frameKind struct {
	batch bool
	steps int
}

// TestConnectionAdaptiveBatching drives a Connection against a scripted
// congestion controller and checks the wire traffic: batches grow to the
// cap while the controller reports congestion and shrink back to
// single-step messages once it clears.
func TestConnectionAdaptiveBatching(t *testing.T) {
	const cells, timesteps, p = 12, 12, 1
	net := transport.NewMemNetwork(transport.Options{})
	reply, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer reply.Close()
	dataRecv, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer dataRecv.Close()
	frames := make(chan frameKind, 256)
	go func() {
		for {
			m, err := dataRecv.Recv(0)
			if err != nil {
				return
			}
			switch wire.PayloadType(m.Payload) {
			case wire.TypeDataBatch:
				var v wire.DataBatchView
				if err := v.Parse(m.Payload); err == nil {
					frames <- frameKind{batch: true, steps: v.NumSteps()}
				}
			case wire.TypeData:
				frames <- frameKind{steps: 1}
			}
		}
	}()
	mainRecv, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer mainRecv.Close()
	go func() {
		m, err := mainRecv.Recv(0)
		if err != nil {
			return
		}
		hello, _ := wire.Decode(m.Payload)
		s, err := net.Dial(hello.(*wire.Hello).ReplyAddr)
		if err != nil {
			return
		}
		s.Send(wire.Encode(&wire.Welcome{
			Timesteps:   timesteps,
			Cells:       cells,
			P:           p,
			ServerAddr:  []string{dataRecv.Addr()},
			Partitions:  mesh.BlockPartition(cells, 1),
			DurableStep: wire.NoDurability, // no checkpointing in the fake
		}))
		s.Close()
	}()

	conn, err := Connect(net, mainRecv.Addr(), 0, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctl := &BatchController{}
	conn.MaxBatchSteps = 4
	conn.Congestion = ctl

	fields := make([][]float64, p+2)
	for f := range fields {
		fields[f] = make([]float64, cells)
	}
	// Phase 1: congested server — batches must grow to the cap.
	for i := 0; i < 4; i++ {
		ctl.Observe(1.0)
	}
	for step := 0; step < 8; step++ {
		if err := conn.SendTimestep(step, fields); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: backlog cleared — batches must shrink back to one step.
	for i := 0; i < 8; i++ {
		ctl.Observe(0)
	}
	for step := 8; step < timesteps; step++ {
		if err := conn.SendTimestep(step, fields); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}

	var got []frameKind
	total := 0
	for total < timesteps {
		select {
		case fr := <-frames:
			got = append(got, fr)
			total += fr.steps
		case <-time.After(5 * time.Second):
			t.Fatalf("received %d of %d steps", total, timesteps)
		}
	}
	if len(got) == 0 || !got[0].batch || got[0].steps != 4 {
		t.Fatalf("congested phase opened with %+v, want a 4-step batch", got[0])
	}
	last := got[len(got)-1]
	if last.steps != 1 {
		t.Fatalf("cleared phase ended with %d-step frames, want 1", last.steps)
	}
	if len(got) >= timesteps {
		t.Fatalf("adaptive batching sent %d frames for %d steps — never batched", len(got), timesteps)
	}
}

// TestConnectionLocalFallbackSignal: with no launcher-fed controller the
// connection derives its level from its own send-queue occupancy, which is
// zero here — so adaptive mode must degrade to single-step batches.
func TestConnectionLocalFallbackSignal(t *testing.T) {
	f := newFakeServer(t, 1, 8, 3, 1)
	defer f.close()
	conn, err := Connect(f.net, f.mainRecv.Addr(), 0, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.MaxBatchSteps = 4

	fields := [][]float64{make([]float64, 8), make([]float64, 8), make([]float64, 8)}
	for step := 0; step < 3; step++ {
		if err := conn.SendTimestep(step, fields); err != nil {
			t.Fatal(err)
		}
		if conn.effSteps != 1 {
			t.Fatalf("idle local signal produced batch size %d, want 1", conn.effSteps)
		}
	}
}
