// Package client implements the Melissa client side: the simulation group.
//
// A group runs p+2 simulations synchronously (Sec. 3.3), one per row of the
// pick-freeze matrices (A_i, B_i, C^1_i .. C^p_i). Data leaves the group in
// the two-stage pattern of Sec. 4.1.2: the fields of all p+2 simulations are
// first gathered per simulation rank onto the main simulation (stage 1,
// MPI_Gather in the paper), then each main-simulation rank pushes its piece
// to exactly the server processes whose partitions it overlaps (stage 2, the
// static N×M redistribution).
//
// The integration API mirrors the paper's three-function library:
// Connect (Initialise), SendTimestep (Process), Close (Finalize).
package client

import (
	"fmt"
	"math/rand"
	"time"

	"melissa/internal/enc"
	"melissa/internal/mesh"
	"melissa/internal/transport"
	"melissa/internal/wire"
)

// Simulation is the solver abstraction the group runtime drives: Run
// integrates one parameter set and must call emit once per output timestep,
// in increasing step order. Run aborts early when emit returns false.
type Simulation interface {
	Run(row []float64, emit func(step int, field []float64) bool)
}

// SimFunc adapts a plain function to the Simulation interface.
type SimFunc func(row []float64, emit func(step int, field []float64) bool)

// Run implements Simulation.
func (f SimFunc) Run(row []float64, emit func(step int, field []float64) bool) {
	f(row, emit)
}

// Connection is an established group↔server session: the result of the
// dynamic connection handshake, holding one sender per server process this
// group needs (every one of them, in the block-partitioned layout).
type Connection struct {
	GroupID  int
	SimRanks int
	Layout   *wire.Welcome

	// BatchSteps, when > 1, buffers that many timesteps per server process
	// and ships them as a single wire.DataBatch message, amortizing framing
	// and syscall/channel overhead (set it before the first SendTimestep;
	// call Flush — or Close — to push a partial final batch). The default 1
	// sends one Data message per (sim rank, server process, timestep).
	// Batching stretches the group's inter-message gap by the same factor —
	// server-side group timeouts must account for it (the launcher scales
	// its GroupTimeout automatically).
	BatchSteps int

	// MaxBatchSteps, when > 1, enables adaptive batching: the effective
	// batch size floats between 1 and MaxBatchSteps, driven by server
	// congestion — small batches (low latency) while the fold pipeline
	// keeps up, growing batches (high throughput) when it reports
	// backpressure. It overrides BatchSteps. Set both knobs before the
	// first SendTimestep.
	MaxBatchSteps int

	// Congestion supplies the server congestion signal for adaptive
	// batching, normally the study-wide controller the launcher feeds from
	// server reports. When nil (e.g. a standalone melissa-client with no
	// launcher), the connection falls back to a local signal: the occupancy
	// of its own transport send queues, which backs up exactly when the
	// server stops draining.
	Congestion *BatchController

	// WireCodec, when true, ships field payloads in the compressed framing
	// (delta-XOR + entropy coding, wire.TypeDataBatchC) — provided the server
	// negotiated the capability in the Welcome (Hello always advertises it;
	// a server configured without the codec answers without the bit and the
	// connection transparently stays on the raw format). Set it before the
	// first SendTimestep. Payloads are cut on the receiving process's
	// fold-shard boundaries (Welcome.FoldShards) so each fold worker
	// decompresses exactly its own block.
	WireCodec bool

	// Retry is the connection-resilience policy (retry.go): with a non-zero
	// reconnect budget, failed sends transparently redial the server process,
	// perform the resume handshake and resend the retained unacked window.
	// The zero value keeps the legacy fail-fast behavior. Set via
	// ConnectOpts (the dial path honors it too).
	Retry RetryPolicy

	// ResendWindow is the per-route retention depth in timesteps backing
	// reconnect resends (0 = a default deep enough for the transport's
	// in-flight buffering). Only used when Retry is enabled.
	ResendWindow int

	// OnReconnect, when non-nil, is called after each consumed reconnect
	// (serverRank is -1 for handshake-path retries; attempt counts budget
	// used so far). The launcher uses it to grant in-progress reconnects
	// grace against group timeouts.
	OnReconnect func(serverRank, attempt int)

	// CheckpointHighWater caps how many acked-but-not-durable steps a route
	// may accumulate before the connection asks the server for an early
	// checkpoint (wire.CheckpointReq — fire-and-forget advice, never an
	// ingest blocker). 0 picks 3/4 of the retention window. Only meaningful
	// when the server checkpoints (Welcome.DurableStep != wire.NoDurability)
	// and Retry is enabled.
	CheckpointHighWater int

	// DurableDrainTimeout bounds the completion-time durable drain: after the
	// final Flush, WaitDurable polls each server process until its durable
	// frontier covers every sent step, so a server crash after this group
	// finished cannot roll its contribution back. 0 uses a 30 s default;
	// negative disables the drain.
	DurableDrainTimeout time.Duration

	net      transport.Network
	senders  []transport.Sender
	routes   []mesh.Transfer
	simParts []mesh.Partition

	// Resilience state: budget consumed, the backoff/jitter stream, the
	// per-route retention rings, the per-rank resume floors of a resumed
	// attempt (-1 = nothing folded) and the per-rank skipped-piece counters
	// driving liveness pings.
	reconnects  int
	rng         *rand.Rand
	retain      []retainRing
	resumeFloor []int
	skipped     []int

	// Durable-frontier state: durability reports whether the server
	// checkpoints at all (Welcome.DurableStep != wire.NoDurability); when it
	// does, durable[rank] is that process's last known checkpoint-committed
	// step for this group (-1 = nothing durable), refreshed by every
	// ResumeAck. maxStep is the highest timestep handed to SendTimestep — the
	// durable-drain target. ckptReqAt[rank] is the step the last
	// early-checkpoint request went out at (rate limiting).
	durability bool
	durable    []int
	maxStep    int
	ckptReqAt  []int

	// Compressed-path state: the per-connection compressor, the per-route
	// shard-aligned sub-range lengths (computed on first use), the one-step
	// batch shell of the unbatched path, and the raw-vs-wire byte counters.
	comp      wire.BatchCompressor
	rangeLens [][]int
	oneStep   wire.DataBatch
	wireBytes int64
	rawBytes  int64

	// local is the fallback controller fed from send-queue occupancy;
	// effSteps is the batch size the current timestep was routed with.
	local    BatchController
	effSteps int

	// pending[r] buffers the not-yet-sent steps of route r when batching;
	// step and field storage is reused across flushes. cutScratch holds the
	// per-route sub-slice headers of the unbatched path. A Connection is
	// not safe for concurrent use.
	pending    []routeBatch
	cutScratch [][]float64
}

// routeBatch accumulates the buffered timesteps of one route.
type routeBatch struct {
	steps []wire.DataStep
}

// ConnectOpts parameterizes ConnectWith beyond the classic handshake
// arguments: the retry policy covering the dial path, the retention window
// and the resume flag of restarted attempts.
type ConnectOpts struct {
	GroupID  int
	SimRanks int
	// Timeout bounds each handshake attempt (Welcome wait).
	Timeout time.Duration
	// Retry covers dials, handshakes and later sends (see Connection.Retry).
	Retry RetryPolicy
	// ResendWindow see Connection.ResendWindow.
	ResendWindow int
	// Resume marks a (re)connection of a group whose data may already be
	// partially folded — a restarted attempt. The handshake then asks every
	// server process for its fold frontier, and SendTimestep skips the
	// pieces each process already folded ("session resume without replay
	// traffic"): the solver still recomputes, the network does not recarry.
	Resume bool
	// OnReconnect see Connection.OnReconnect.
	OnReconnect func(serverRank, attempt int)
	// CheckpointHighWater see Connection.CheckpointHighWater.
	CheckpointHighWater int
	// DurableDrainTimeout see Connection.DurableDrainTimeout.
	DurableDrainTimeout time.Duration
}

// Connect performs the dynamic-connection handshake of Sec. 4.1.3: it
// contacts the server main process, retrieves the data partitioning and the
// server process addresses, and opens direct connections to every server
// process this group's ranks will feed.
func Connect(net transport.Network, mainAddr string, groupID, simRanks int, timeout time.Duration) (*Connection, error) {
	return ConnectWith(net, mainAddr, ConnectOpts{GroupID: groupID, SimRanks: simRanks, Timeout: timeout})
}

// ConnectWith is Connect with the resilience options: the handshake itself
// is retried under the same backoff/budget policy as mid-study sends, and a
// resumed attempt learns each server process's fold frontier so it does not
// resend folded data.
func ConnectWith(net transport.Network, mainAddr string, o ConnectOpts) (*Connection, error) {
	if o.SimRanks < 1 {
		return nil, fmt.Errorf("client: group %d needs at least one rank", o.GroupID)
	}
	retry := o.Retry
	if retry.enabled() {
		retry = retry.withDefaults()
	}
	rng := retryRNG(retry, o.GroupID)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > retry.MaxReconnects {
				return nil, lastErr
			}
			time.Sleep(retry.delay(attempt-1, rng))
			cReconnects.Inc()
			if o.OnReconnect != nil {
				o.OnReconnect(-1, attempt)
			}
		}
		conn, err := connectOnce(net, mainAddr, o, retry, rng, o.Resume || attempt > 0)
		if err != nil {
			lastErr = err
			if !retry.enabled() {
				return nil, err
			}
			continue
		}
		// Handshake retries consume the same per-group budget as send-path
		// reconnects.
		conn.reconnects = attempt
		return conn, nil
	}
}

func connectOnce(net transport.Network, mainAddr string, o ConnectOpts, retry RetryPolicy, rng *rand.Rand, resume bool) (*Connection, error) {
	groupID, simRanks, timeout := o.GroupID, o.SimRanks, o.Timeout
	reply, err := net.Listen("")
	if err != nil {
		return nil, fmt.Errorf("client: group %d reply inbox: %w", groupID, err)
	}
	defer reply.Close()

	main, err := net.Dial(mainAddr)
	if err != nil {
		return nil, fmt.Errorf("client: group %d cannot reach server: %w", groupID, err)
	}
	// Caps always advertises the full capability set of this build — whether
	// a capability is used is the server's call (echoed in Welcome.Caps) and
	// the connection's knobs.
	hello := &wire.Hello{GroupID: groupID, SimRanks: simRanks, ReplyAddr: reply.Addr(), Caps: wire.CapWireCodec, Resume: resume}
	if err := main.Send(wire.Encode(hello)); err != nil {
		main.Close()
		return nil, fmt.Errorf("client: group %d hello: %w", groupID, err)
	}
	main.Close()

	msg, err := reply.Recv(timeout)
	if err != nil {
		return nil, fmt.Errorf("client: group %d waiting for welcome: %w", groupID, err)
	}
	decoded, err := wire.Decode(msg.Payload)
	transport.Recycle(msg.Payload) // Decode copied everything out
	if err != nil {
		return nil, fmt.Errorf("client: group %d: %w", groupID, err)
	}
	welcome, ok := decoded.(*wire.Welcome)
	if !ok {
		return nil, fmt.Errorf("client: group %d expected Welcome, got %T", groupID, decoded)
	}

	simParts := mesh.BlockPartition(welcome.Cells, simRanks)
	routes := mesh.Route(simParts, welcome.Partitions)

	conn := &Connection{
		GroupID:             groupID,
		SimRanks:            simRanks,
		Layout:              welcome,
		Retry:               retry,
		ResendWindow:        o.ResendWindow,
		OnReconnect:         o.OnReconnect,
		CheckpointHighWater: o.CheckpointHighWater,
		DurableDrainTimeout: o.DurableDrainTimeout,
		net:                 net,
		simParts:            simParts,
		routes:              routes,
		rng:                 rng,
		maxStep:             -1,
	}
	// The Welcome reveals whether this server checkpoints: a NoDurability
	// sentinel means nothing ever becomes durable (retention then only
	// covers reconnects within this server's life).
	conn.durability = welcome.DurableStep != wire.NoDurability
	if conn.durability {
		conn.durable = make([]int, len(welcome.ServerAddr))
		conn.ckptReqAt = make([]int, len(welcome.ServerAddr))
		for i := range conn.durable {
			conn.durable[i] = -1
			conn.ckptReqAt[i] = -1
		}
		conn.durable[0] = welcome.DurableStep
	}
	// Open one connection per server process that appears in the routing
	// ("each main simulation process opens individual communication
	// channels to each necessary server process").
	conn.senders = make([]transport.Sender, len(welcome.ServerAddr))
	needed := make(map[int]bool)
	for _, tr := range routes {
		needed[tr.ServerRank] = true
	}
	for rank := range needed {
		s, err := net.Dial(welcome.ServerAddr[rank])
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("client: group %d dialing server %d: %w", groupID, rank, err)
		}
		conn.senders[rank] = s
	}
	if resume {
		// Learn each process's fold frontier so the resumed attempt skips
		// resending folded pieces. Rank 0's answer rode along in the Welcome;
		// the others are queried over the fresh data connections.
		conn.resumeFloor = make([]int, len(conn.senders))
		for rank := range conn.resumeFloor {
			conn.resumeFloor[rank] = -1
		}
		conn.resumeFloor[0] = welcome.LastStep
		for rank, s := range conn.senders {
			if s == nil || rank == 0 {
				continue
			}
			ack, err := conn.resumeQueryOn(s, rank)
			if err != nil {
				conn.Close()
				return nil, err
			}
			conn.resumeFloor[rank] = ack.LastStep
			conn.noteAck(ack)
		}
	}
	return conn, nil
}

// SendTimestep pushes one timestep of all p+2 fields to the server — the
// Process call of the 3-function API. fields[0] is f(A_i), fields[1] f(B_i),
// fields[2+k] f(C^k_i); each covers the full mesh. The stage-1 gather is
// implicit (fields are already assembled per simulation); stage 2 cuts them
// along the static routing and ships one message per (sim rank, server
// process) pair.
func (c *Connection) SendTimestep(step int, fields [][]float64) error {
	if len(fields) != c.Layout.P+2 {
		return fmt.Errorf("client: group %d: %d fields, want %d", c.GroupID, len(fields), c.Layout.P+2)
	}
	for i, f := range fields {
		if len(f) != c.Layout.Cells {
			return fmt.Errorf("client: group %d field %d has %d cells, want %d",
				c.GroupID, i, len(f), c.Layout.Cells)
		}
	}
	if step > c.maxStep {
		c.maxStep = step
	}
	c.effSteps = c.effectiveBatchSteps()
	cBatchSteps.Observe(float64(c.effSteps))
	if c.effSteps > 1 || c.MaxBatchSteps > 1 {
		// Adaptive mode stays on the buffered path even at batch size 1 so
		// a later growth decision needs no path switch mid-stream.
		return c.bufferTimestep(step, fields)
	}
	if c.cutScratch == nil {
		c.cutScratch = make([][]float64, len(fields))
	}
	cut := c.cutScratch
	codecOn := c.codecNegotiated()
	for ri, tr := range c.routes {
		if skip, err := c.skipResumed(tr.ServerRank, step); skip || err != nil {
			if err != nil {
				return err
			}
			continue // the server already folded this piece (resume floor)
		}
		for fi, f := range fields {
			cut[fi] = f[tr.Cells.Lo:tr.Cells.Hi]
		}
		c.retainStep(ri, step, cut)
		var w *enc.Writer
		if codecOn {
			// A compressed single step is a one-step TypeDataBatchC frame —
			// the codec framing's degenerate batch, so the server needs no
			// third bulk path.
			c.oneStep.GroupID = c.GroupID
			c.oneStep.CellLo = tr.Cells.Lo
			c.oneStep.CellHi = tr.Cells.Hi
			if c.oneStep.Steps == nil {
				c.oneStep.Steps = make([]wire.DataStep, 1)
			}
			c.oneStep.Steps[0].Timestep = step
			c.oneStep.Steps[0].Fields = cut
			w = enc.GetWriter(int(wire.DataSizeBytes(len(cut), tr.Cells.Len())))
			c.comp.EncodeTo(w, &c.oneStep, c.routeRangeLens(ri))
			c.wireBytes += int64(w.Len())
			c.rawBytes += wire.DataSizeBytes(len(cut), tr.Cells.Len())
			cWireBytes.Add(int64(w.Len()))
			cRawBytes.Add(wire.DataSizeBytes(len(cut), tr.Cells.Len()))
		} else {
			data := &wire.Data{
				GroupID:  c.GroupID,
				Timestep: step,
				CellLo:   tr.Cells.Lo,
				CellHi:   tr.Cells.Hi,
				Fields:   cut,
			}
			w = enc.GetWriter(int(wire.DataSizeBytes(len(cut), tr.Cells.Len())))
			wire.EncodeTo(w, data)
			c.wireBytes += int64(w.Len())
			c.rawBytes += int64(w.Len())
			cWireBytes.Add(int64(w.Len()))
			cRawBytes.Add(int64(w.Len()))
		}
		cMessages.Inc()
		err := c.sendFrame(tr.ServerRank, w.Bytes())
		enc.PutWriter(w) // Send copied the payload
		if err != nil {
			return fmt.Errorf("client: group %d step %d to server %d: %w",
				c.GroupID, step, tr.ServerRank, err)
		}
	}
	return nil
}

// codecNegotiated reports whether compressed frames may be sent: the local
// knob is on and the server granted the capability.
func (c *Connection) codecNegotiated() bool {
	return c.WireCodec && c.Layout.Caps&wire.CapWireCodec != 0
}

// routeRangeLens returns route ri's compressed sub-range lengths: the
// receiving process's fold-shard boundaries intersected with the route's
// cell range, computed once per route. The server resolves its shard count
// with the same block rule (core.NewSharded), so each block lands on exactly
// one fold worker.
func (c *Connection) routeRangeLens(ri int) []int {
	if c.rangeLens == nil {
		c.rangeLens = make([][]int, len(c.routes))
	}
	if c.rangeLens[ri] == nil {
		tr := c.routes[ri]
		part := c.Layout.Partitions[tr.ServerRank]
		shards := 1
		if tr.ServerRank < len(c.Layout.FoldShards) {
			shards = c.Layout.FoldShards[tr.ServerRank]
		}
		if shards < 1 {
			shards = 1
		}
		if n := part.Len(); shards > n {
			shards = n
		}
		lens := []int{}
		for _, sh := range mesh.BlockPartition(part.Len(), shards) {
			lo := max(sh.Lo+part.Lo, tr.Cells.Lo)
			hi := min(sh.Hi+part.Lo, tr.Cells.Hi)
			if lo < hi {
				lens = append(lens, hi-lo)
			}
		}
		c.rangeLens[ri] = lens
	}
	return c.rangeLens[ri]
}

// WireStats returns the bytes this connection put on the wire and the bytes
// the same payloads would have cost in the raw format (equal when the codec
// is off — the negotiated-codec savings is their ratio).
func (c *Connection) WireStats() (wireBytes, rawBytes int64) {
	return c.wireBytes, c.rawBytes
}

// effectiveBatchSteps resolves the batch size for the current timestep:
// the static BatchSteps knob, unless adaptive batching (MaxBatchSteps > 1)
// is on — then the congestion controller's current level decides, using the
// launcher-fed controller when present and the local send-queue occupancy
// otherwise.
func (c *Connection) effectiveBatchSteps() int {
	if c.MaxBatchSteps <= 1 {
		if c.BatchSteps > 1 {
			return c.BatchSteps
		}
		return 1
	}
	ctl := c.Congestion
	if ctl == nil {
		worst := 0.0
		for _, s := range c.senders {
			if qp, ok := s.(transport.QueueProber); ok {
				if f := qp.QueueFraction(); f > worst {
					worst = f
				}
			}
		}
		cSendQueue.Set(worst)
		c.local.Observe(worst)
		ctl = &c.local
	}
	return ctl.Steps(c.MaxBatchSteps)
}

// bufferTimestep copies one step's route cuts into the per-route batch
// buffers and flushes every route that reached the effective batch size.
func (c *Connection) bufferTimestep(step int, fields [][]float64) error {
	if c.pending == nil {
		c.pending = make([]routeBatch, len(c.routes))
	}
	for ri, tr := range c.routes {
		if skip, err := c.skipResumed(tr.ServerRank, step); skip || err != nil {
			if err != nil {
				return err
			}
			continue // the server already folded this piece (resume floor)
		}
		rb := &c.pending[ri]
		n := len(rb.steps)
		if cap(rb.steps) > n {
			rb.steps = rb.steps[:n+1]
		} else {
			rb.steps = append(rb.steps, wire.DataStep{})
		}
		st := &rb.steps[n]
		st.Timestep = step
		if cap(st.Fields) < len(fields) {
			st.Fields = make([][]float64, len(fields))
		} else {
			st.Fields = st.Fields[:len(fields)]
		}
		for fi, f := range fields {
			src := f[tr.Cells.Lo:tr.Cells.Hi]
			dst := st.Fields[fi]
			if cap(dst) < len(src) {
				dst = make([]float64, len(src))
			} else {
				dst = dst[:len(src)]
			}
			copy(dst, src)
			st.Fields[fi] = dst
		}
		if len(rb.steps) >= c.effSteps {
			if err := c.flushRoute(ri); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushRoute ships route ri's buffered steps as one DataBatch.
func (c *Connection) flushRoute(ri int) error {
	rb := &c.pending[ri]
	if len(rb.steps) == 0 {
		return nil
	}
	tr := c.routes[ri]
	batch := &wire.DataBatch{
		GroupID: c.GroupID,
		CellLo:  tr.Cells.Lo,
		CellHi:  tr.Cells.Hi,
		Steps:   rb.steps,
	}
	rawSize := wire.DataBatchSizeBytes(len(rb.steps), len(rb.steps[0].Fields), tr.Cells.Len())
	w := enc.GetWriter(int(rawSize))
	if c.codecNegotiated() {
		c.comp.EncodeTo(w, batch, c.routeRangeLens(ri))
	} else {
		wire.EncodeTo(w, batch)
	}
	c.wireBytes += int64(w.Len())
	c.rawBytes += rawSize
	cWireBytes.Add(int64(w.Len()))
	cRawBytes.Add(rawSize)
	cMessages.Inc()
	if c.Retry.enabled() {
		for i := range rb.steps {
			c.retainStep(ri, rb.steps[i].Timestep, rb.steps[i].Fields)
		}
	}
	err := c.sendFrame(tr.ServerRank, w.Bytes())
	enc.PutWriter(w)
	rb.steps = rb.steps[:0] // keep field storage for the next batch
	if err != nil {
		return fmt.Errorf("client: group %d batch to server %d: %w", c.GroupID, tr.ServerRank, err)
	}
	return nil
}

// Flush ships any partially filled batches. It is a no-op when batching is
// off; when batching is on, call it after the last SendTimestep (Close also
// flushes, but swallows errors).
func (c *Connection) Flush() error {
	for ri := range c.pending {
		if err := c.flushRoute(ri); err != nil {
			return err
		}
	}
	return nil
}

// Messages returns how many stage-2 messages one timestep produces.
func (c *Connection) Messages() int { return len(c.routes) }

// Close releases all server connections — the Finalize call. Buffered
// batches are flushed best-effort first.
func (c *Connection) Close() {
	c.Flush()
	for _, s := range c.senders {
		if s != nil {
			s.Close()
		}
	}
}
