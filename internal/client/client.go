// Package client implements the Melissa client side: the simulation group.
//
// A group runs p+2 simulations synchronously (Sec. 3.3), one per row of the
// pick-freeze matrices (A_i, B_i, C^1_i .. C^p_i). Data leaves the group in
// the two-stage pattern of Sec. 4.1.2: the fields of all p+2 simulations are
// first gathered per simulation rank onto the main simulation (stage 1,
// MPI_Gather in the paper), then each main-simulation rank pushes its piece
// to exactly the server processes whose partitions it overlaps (stage 2, the
// static N×M redistribution).
//
// The integration API mirrors the paper's three-function library:
// Connect (Initialise), SendTimestep (Process), Close (Finalize).
package client

import (
	"fmt"
	"time"

	"melissa/internal/mesh"
	"melissa/internal/transport"
	"melissa/internal/wire"
)

// Simulation is the solver abstraction the group runtime drives: Run
// integrates one parameter set and must call emit once per output timestep,
// in increasing step order. Run aborts early when emit returns false.
type Simulation interface {
	Run(row []float64, emit func(step int, field []float64) bool)
}

// SimFunc adapts a plain function to the Simulation interface.
type SimFunc func(row []float64, emit func(step int, field []float64) bool)

// Run implements Simulation.
func (f SimFunc) Run(row []float64, emit func(step int, field []float64) bool) {
	f(row, emit)
}

// Connection is an established group↔server session: the result of the
// dynamic connection handshake, holding one sender per server process this
// group needs (every one of them, in the block-partitioned layout).
type Connection struct {
	GroupID  int
	SimRanks int
	Layout   *wire.Welcome

	net      transport.Network
	senders  []transport.Sender
	routes   []mesh.Transfer
	simParts []mesh.Partition
}

// Connect performs the dynamic-connection handshake of Sec. 4.1.3: it
// contacts the server main process, retrieves the data partitioning and the
// server process addresses, and opens direct connections to every server
// process this group's ranks will feed.
func Connect(net transport.Network, mainAddr string, groupID, simRanks int, timeout time.Duration) (*Connection, error) {
	if simRanks < 1 {
		return nil, fmt.Errorf("client: group %d needs at least one rank", groupID)
	}
	reply, err := net.Listen("")
	if err != nil {
		return nil, fmt.Errorf("client: group %d reply inbox: %w", groupID, err)
	}
	defer reply.Close()

	main, err := net.Dial(mainAddr)
	if err != nil {
		return nil, fmt.Errorf("client: group %d cannot reach server: %w", groupID, err)
	}
	hello := &wire.Hello{GroupID: groupID, SimRanks: simRanks, ReplyAddr: reply.Addr()}
	if err := main.Send(wire.Encode(hello)); err != nil {
		main.Close()
		return nil, fmt.Errorf("client: group %d hello: %w", groupID, err)
	}
	main.Close()

	msg, err := reply.Recv(timeout)
	if err != nil {
		return nil, fmt.Errorf("client: group %d waiting for welcome: %w", groupID, err)
	}
	decoded, err := wire.Decode(msg.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: group %d: %w", groupID, err)
	}
	welcome, ok := decoded.(*wire.Welcome)
	if !ok {
		return nil, fmt.Errorf("client: group %d expected Welcome, got %T", groupID, decoded)
	}

	simParts := mesh.BlockPartition(welcome.Cells, simRanks)
	routes := mesh.Route(simParts, welcome.Partitions)

	conn := &Connection{
		GroupID:  groupID,
		SimRanks: simRanks,
		Layout:   welcome,
		net:      net,
		simParts: simParts,
		routes:   routes,
	}
	// Open one connection per server process that appears in the routing
	// ("each main simulation process opens individual communication
	// channels to each necessary server process").
	conn.senders = make([]transport.Sender, len(welcome.ServerAddr))
	needed := make(map[int]bool)
	for _, tr := range routes {
		needed[tr.ServerRank] = true
	}
	for rank := range needed {
		s, err := net.Dial(welcome.ServerAddr[rank])
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("client: group %d dialing server %d: %w", groupID, rank, err)
		}
		conn.senders[rank] = s
	}
	return conn, nil
}

// SendTimestep pushes one timestep of all p+2 fields to the server — the
// Process call of the 3-function API. fields[0] is f(A_i), fields[1] f(B_i),
// fields[2+k] f(C^k_i); each covers the full mesh. The stage-1 gather is
// implicit (fields are already assembled per simulation); stage 2 cuts them
// along the static routing and ships one message per (sim rank, server
// process) pair.
func (c *Connection) SendTimestep(step int, fields [][]float64) error {
	if len(fields) != c.Layout.P+2 {
		return fmt.Errorf("client: group %d: %d fields, want %d", c.GroupID, len(fields), c.Layout.P+2)
	}
	for i, f := range fields {
		if len(f) != c.Layout.Cells {
			return fmt.Errorf("client: group %d field %d has %d cells, want %d",
				c.GroupID, i, len(f), c.Layout.Cells)
		}
	}
	for _, tr := range c.routes {
		cut := make([][]float64, len(fields))
		for fi, f := range fields {
			cut[fi] = f[tr.Cells.Lo:tr.Cells.Hi]
		}
		data := &wire.Data{
			GroupID:  c.GroupID,
			Timestep: step,
			CellLo:   tr.Cells.Lo,
			CellHi:   tr.Cells.Hi,
			Fields:   cut,
		}
		if err := c.senders[tr.ServerRank].Send(wire.Encode(data)); err != nil {
			return fmt.Errorf("client: group %d step %d to server %d: %w",
				c.GroupID, step, tr.ServerRank, err)
		}
	}
	return nil
}

// Messages returns how many stage-2 messages one timestep produces.
func (c *Connection) Messages() int { return len(c.routes) }

// Close releases all server connections — the Finalize call.
func (c *Connection) Close() {
	for _, s := range c.senders {
		if s != nil {
			s.Close()
		}
	}
}
