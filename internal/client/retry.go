package client

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"melissa/internal/enc"
	olog "melissa/internal/obs/log"
	"melissa/internal/transport"
	"melissa/internal/wire"
)

// reconnLim and pingLim rate-limit the reconnect and resume-ping study-log
// lines per (group, server rank): a long server outage produces backoff
// attempts and liveness pings by the thousand, and the log should carry one
// line per interval with a suppressed count while the counters stay exact.
var (
	reconnLim = olog.Limiter{Interval: 5 * time.Second}
	pingLim   = olog.Limiter{Interval: 5 * time.Second}
)

// limKey packs (group, server rank) into one rate-limiter key.
func limKey(group, rank int) uint64 { return uint64(uint32(group))<<16 | uint64(uint16(rank)) }

// RetryPolicy configures the connection-resilience layer: how often a group
// may re-establish a broken server connection (dial and send paths both
// count against the same per-group budget) and how the capped exponential
// backoff between attempts grows. The zero value disables retries entirely —
// a failed dial or send fails the attempt immediately, exactly the
// pre-resilience behavior (the launcher then treats it as a group death and
// replays, Sec. 4.2).
type RetryPolicy struct {
	// MaxReconnects is the per-group reconnect budget; 0 disables retries.
	MaxReconnects int
	// BaseDelay is the first backoff delay (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter is the relative random spread applied to each delay, e.g. 0.2
	// for ±20% (the default); negative disables jitter.
	Jitter float64
	// AckTimeout bounds the wait for a ResumeAck after a reconnect
	// (default 5s).
	AckTimeout time.Duration
	// Seed drives the jitter; mixed with the group id, so a fixed seed makes
	// backoff sequences reproducible study-wide.
	Seed int64
}

func (p RetryPolicy) enabled() bool { return p.MaxReconnects > 0 }

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.AckTimeout <= 0 {
		p.AckTimeout = 5 * time.Second
	}
	return p
}

// delay returns the backoff before retry number attempt (0-based).
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < attempt && d < float64(p.MaxDelay); i++ {
		d *= p.Multiplier
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

func retryRNG(p RetryPolicy, groupID int) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed ^ int64(uint64(groupID)*0x9e3779b97f4a7c15)))
}

// defaultResendWindow is the per-route retention depth in timesteps when
// Connection.ResendWindow is unset: deep enough to cover the frames a broken
// connection can have in flight (send queue + receive inbox) at default
// transport buffering.
const defaultResendWindow = 128

// resumePingEvery is how many skipped pieces a resumed attempt sends per
// liveness ping: while the solver recomputes steps the server already
// folded, no data flows, so periodic Resume pings keep the server's
// per-group message clock fresh and the timeout machinery quiet.
const resumePingEvery = 64

// errResumeGap marks an unrecoverable reconnect: the server's fold frontier
// is behind the oldest step the client still retains, so the unacked window
// cannot be resent and only a full group replay can heal the study.
var errResumeGap = errors.New("client: resume gap exceeds retention window")

// retainedStep is one timestep's route cut, copied into the retention ring.
type retainedStep struct {
	step   int
	fields [][]float64
}

// retainRing keeps the most recent sent steps of one route (a fixed-size
// ring; storage is reused across pushes).
type retainRing struct {
	buf  []retainedStep
	head int // index of the oldest entry
	n    int
}

func (r *retainRing) push(window, step int, fields [][]float64) {
	if r.buf == nil {
		if window < 1 {
			window = 1
		}
		r.buf = make([]retainedStep, window)
	}
	idx := (r.head + r.n) % len(r.buf)
	if r.n == len(r.buf) {
		idx = r.head
		r.head = (r.head + 1) % len(r.buf)
	} else {
		r.n++
	}
	slot := &r.buf[idx]
	slot.step = step
	if cap(slot.fields) < len(fields) {
		slot.fields = make([][]float64, len(fields))
	} else {
		slot.fields = slot.fields[:len(fields)]
	}
	for i, f := range fields {
		dst := slot.fields[i]
		if cap(dst) < len(f) {
			dst = make([]float64, len(f))
		} else {
			dst = dst[:len(f)]
		}
		copy(dst, f)
		slot.fields[i] = dst
	}
}

func (r *retainRing) at(i int) *retainedStep { return &r.buf[(r.head+i)%len(r.buf)] }

// retainStep copies one route cut into the retention ring; a later reconnect
// resends the retained steps the server has not folded. No-op when retries
// are disabled, so the legacy path carries no copy cost.
func (c *Connection) retainStep(ri, step int, fields [][]float64) {
	if !c.Retry.enabled() {
		return
	}
	if c.retain == nil {
		c.retain = make([]retainRing, len(c.routes))
	}
	w := c.ResendWindow
	if w <= 0 {
		w = defaultResendWindow
	}
	c.retain[ri].push(w, step, fields)
	c.noteRetained(c.routes[ri].ServerRank, step)
}

// sendFrame sends one encoded frame to a server rank, transparently
// reconnecting and resending the unacked window on failure when the retry
// policy allows.
func (c *Connection) sendFrame(rank int, payload []byte) error {
	err := c.senders[rank].Send(payload)
	if err == nil || !c.Retry.enabled() {
		return err
	}
	return c.recoverRank(rank, err)
}

// Reconnects returns how much of the retry budget this connection consumed
// (dial-path and send-path reconnects combined).
func (c *Connection) Reconnects() int { return c.reconnects }

// recoverRank re-establishes the connection to one server process after a
// send failure: backoff, redial, resume handshake, then resend of every
// retained step beyond the server's acknowledged fold frontier. The frame
// whose send failed is covered by the retention ring (steps are retained
// before they are sent), so nothing is lost between the failure and the
// resend.
func (c *Connection) recoverRank(rank int, cause error) error {
	for attempt := 0; ; attempt++ {
		if c.reconnects >= c.Retry.MaxReconnects {
			return fmt.Errorf("client: group %d server %d: retry budget (%d) exhausted: %w",
				c.GroupID, rank, c.Retry.MaxReconnects, cause)
		}
		c.reconnects++
		time.Sleep(c.Retry.delay(attempt, c.rng))
		cReconnects.Inc()
		if ok, suppressed := reconnLim.Allow(limKey(c.GroupID, rank)); ok {
			kv := []any{"group", c.GroupID, "server", rank,
				"used", c.reconnects, "budget", c.Retry.MaxReconnects, "cause", cause}
			if suppressed > 0 {
				kv = append(kv, "suppressed", suppressed)
			}
			olog.Infow("client.reconnect", kv...)
		}
		if c.OnReconnect != nil {
			c.OnReconnect(rank, c.reconnects)
		}
		s, err := c.net.Dial(c.Layout.ServerAddr[rank])
		if err != nil {
			cause = err
			continue
		}
		ack, err := c.resumeQueryOn(s, rank)
		if err != nil {
			s.Close()
			cause = err
			continue
		}
		if old := c.senders[rank]; old != nil {
			old.Close()
		}
		c.senders[rank] = s
		c.noteAck(ack)
		err = c.resendRank(rank, ack.LastStep)
		if err == nil {
			olog.Debugw("client.reconnected", "group", c.GroupID, "server", rank,
				"acked_step", ack.LastStep, "durable_step", ack.DurableStep, "used", c.reconnects)
			return nil
		}
		if errors.Is(err, errResumeGap) {
			return err
		}
		cause = err
	}
}

// resumeQueryOn performs the resume handshake on a fresh connection: it asks
// the server process for its contiguous fold frontier of this group and
// waits for the dialed-back ResumeAck (which also carries the durable
// frontier — the caller feeds it to noteAck).
func (c *Connection) resumeQueryOn(s transport.Sender, rank int) (*wire.ResumeAck, error) {
	inbox, err := c.net.Listen("")
	if err != nil {
		return nil, fmt.Errorf("client: group %d resume inbox: %w", c.GroupID, err)
	}
	defer inbox.Close()
	if err := s.Send(wire.Encode(&wire.Resume{GroupID: c.GroupID, ReplyAddr: inbox.Addr()})); err != nil {
		return nil, fmt.Errorf("client: group %d resume query to server %d: %w", c.GroupID, rank, err)
	}
	ackTimeout := c.Retry.AckTimeout
	if ackTimeout <= 0 {
		ackTimeout = 5 * time.Second // resume without a retry policy
	}
	msg, err := inbox.Recv(ackTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: group %d resume ack from server %d: %w", c.GroupID, rank, err)
	}
	decoded, err := wire.Decode(msg.Payload)
	transport.Recycle(msg.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: group %d resume ack: %w", c.GroupID, err)
	}
	ack, ok := decoded.(*wire.ResumeAck)
	if !ok || ack.GroupID != c.GroupID {
		return nil, fmt.Errorf("client: group %d: unexpected resume reply %T", c.GroupID, decoded)
	}
	cResumeAcks.Inc()
	return ack, nil
}

// resendRank replays the retained steps beyond the server's acknowledged
// frontier on the (re-established) connection to rank, as single-step
// frames. Steps the server already folded are skipped; replay-discard makes
// any overlap with frames that were still in flight idempotent.
func (c *Connection) resendRank(rank, ack int) error {
	if c.retain == nil {
		return nil
	}
	for ri, tr := range c.routes {
		if tr.ServerRank != rank {
			continue
		}
		r := &c.retain[ri]
		if r.n == 0 {
			continue
		}
		if oldest := r.at(0).step; oldest > ack+1 {
			return fmt.Errorf("%w: server %d acked step %d, oldest retained step %d",
				errResumeGap, rank, ack, oldest)
		}
		for i := 0; i < r.n; i++ {
			st := r.at(i)
			if st.step <= ack {
				continue
			}
			if err := c.resendPiece(ri, st); err != nil {
				return err
			}
			cResentFrames.Inc()
		}
	}
	return nil
}

// resendPiece re-encodes one retained route cut and pushes it directly (no
// recursive recovery — the caller's reconnect loop owns error handling).
func (c *Connection) resendPiece(ri int, st *retainedStep) error {
	tr := c.routes[ri]
	rawSize := wire.DataSizeBytes(len(st.fields), tr.Cells.Len())
	w := enc.GetWriter(int(rawSize))
	if c.codecNegotiated() {
		c.oneStep.GroupID = c.GroupID
		c.oneStep.CellLo = tr.Cells.Lo
		c.oneStep.CellHi = tr.Cells.Hi
		if c.oneStep.Steps == nil {
			c.oneStep.Steps = make([]wire.DataStep, 1)
		}
		c.oneStep.Steps[0].Timestep = st.step
		c.oneStep.Steps[0].Fields = st.fields
		c.comp.EncodeTo(w, &c.oneStep, c.routeRangeLens(ri))
	} else {
		wire.EncodeTo(w, &wire.Data{
			GroupID:  c.GroupID,
			Timestep: st.step,
			CellLo:   tr.Cells.Lo,
			CellHi:   tr.Cells.Hi,
			Fields:   st.fields,
		})
	}
	c.wireBytes += int64(w.Len())
	c.rawBytes += rawSize
	cWireBytes.Add(int64(w.Len()))
	cRawBytes.Add(rawSize)
	cMessages.Inc()
	err := c.senders[tr.ServerRank].Send(w.Bytes())
	enc.PutWriter(w)
	return err
}

// skipResumed reports whether a resumed attempt should skip sending this
// route piece because the server rank already folded the step (resume
// floor). Every resumePingEvery skipped pieces a liveness Resume ping is
// sent so the server's timeout machinery sees the group alive while the
// solver recomputes folded steps without producing traffic.
func (c *Connection) skipResumed(rank, step int) (bool, error) {
	if c.resumeFloor == nil || rank >= len(c.resumeFloor) || step > c.resumeFloor[rank] {
		return false, nil
	}
	cSkippedPieces.Inc()
	if c.skipped == nil {
		c.skipped = make([]int, len(c.senders))
	}
	c.skipped[rank]++
	if c.skipped[rank]%resumePingEvery == 1 && c.senders[rank] != nil {
		if ok, suppressed := pingLim.Allow(limKey(c.GroupID, rank)); ok {
			kv := []any{"group", c.GroupID, "server", rank, "skipped", c.skipped[rank]}
			if suppressed > 0 {
				kv = append(kv, "suppressed", suppressed)
			}
			olog.Debugw("client.resume_ping", kv...)
		}
		if err := c.sendFrame(rank, wire.Encode(&wire.Resume{GroupID: c.GroupID})); err != nil {
			return true, fmt.Errorf("client: group %d liveness ping to server %d: %w", c.GroupID, rank, err)
		}
	}
	return true, nil
}
