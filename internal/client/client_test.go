package client

import (
	"testing"
	"time"

	"melissa/internal/mesh"
	"melissa/internal/transport"
	"melissa/internal/wire"
)

// fakeServer answers one Hello with a canned Welcome and then collects Data
// messages, standing in for the real server in client-side unit tests.
type fakeServer struct {
	net      *transport.MemNetwork
	welcome  wire.Welcome
	mainRecv transport.Receiver
	dataRecv []transport.Receiver
	data     chan *wire.Data
}

func newFakeServer(t *testing.T, procs, cells, timesteps, p int) *fakeServer {
	t.Helper()
	f := &fakeServer{
		net:  transport.NewMemNetwork(transport.Options{}),
		data: make(chan *wire.Data, 1024),
	}
	var err error
	f.mainRecv, err = f.net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	f.welcome = wire.Welcome{
		Timesteps:   timesteps,
		Cells:       cells,
		P:           p,
		Partitions:  mesh.BlockPartition(cells, procs),
		DurableStep: wire.NoDurability, // no checkpointing in the fake
	}
	for i := 0; i < procs; i++ {
		r, err := f.net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		f.dataRecv = append(f.dataRecv, r)
		f.welcome.ServerAddr = append(f.welcome.ServerAddr, r.Addr())
		go func(r transport.Receiver) {
			for {
				m, err := r.Recv(0)
				if err != nil {
					return
				}
				if d, err := wire.Decode(m.Payload); err == nil {
					if data, ok := d.(*wire.Data); ok {
						f.data <- data
					}
				}
			}
		}(r)
	}
	go func() {
		for {
			m, err := f.mainRecv.Recv(0)
			if err != nil {
				return
			}
			decoded, err := wire.Decode(m.Payload)
			if err != nil {
				continue
			}
			hello, ok := decoded.(*wire.Hello)
			if !ok {
				continue
			}
			s, err := f.net.Dial(hello.ReplyAddr)
			if err != nil {
				continue
			}
			s.Send(wire.Encode(&f.welcome))
			s.Close()
		}
	}()
	return f
}

func (f *fakeServer) close() {
	f.mainRecv.Close()
	for _, r := range f.dataRecv {
		r.Close()
	}
}

func TestConnectHandshake(t *testing.T) {
	f := newFakeServer(t, 3, 90, 10, 4)
	defer f.close()
	conn, err := Connect(f.net, f.mainRecv.Addr(), 5, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.GroupID != 5 || conn.Layout.Cells != 90 || conn.Layout.P != 4 {
		t.Fatalf("connection %+v", conn.Layout)
	}
	// 2 sim ranks × 3 server procs with 90 cells: the block overlap count.
	if conn.Messages() < 3 || conn.Messages() > 4 {
		t.Fatalf("unexpected route count %d", conn.Messages())
	}
}

func TestConnectTimeoutWithoutServer(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	dead, _ := net.Listen("") // nobody answers
	defer dead.Close()
	start := time.Now()
	_, err := Connect(net, dead.Addr(), 1, 1, 100*time.Millisecond)
	if err == nil {
		t.Fatal("connect succeeded without a server")
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

func TestConnectInvalidRanks(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	if _, err := Connect(net, "mem://x", 1, 0, time.Second); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestSendTimestepValidation(t *testing.T) {
	f := newFakeServer(t, 2, 40, 5, 2)
	defer f.close()
	conn, err := Connect(f.net, f.mainRecv.Addr(), 0, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	mk := func(n, cells int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = make([]float64, cells)
		}
		return out
	}
	if err := conn.SendTimestep(0, mk(3, 40)); err == nil {
		t.Fatal("wrong field count accepted")
	}
	if err := conn.SendTimestep(0, mk(4, 39)); err == nil {
		t.Fatal("wrong cell count accepted")
	}
	if err := conn.SendTimestep(0, mk(4, 40)); err != nil {
		t.Fatal(err)
	}
}

// Every cell must arrive exactly once per (timestep, field) across all
// server processes — the client half of the partition-completeness invariant.
func TestSendTimestepCoversAllCellsOnce(t *testing.T) {
	const procs, cells, p = 3, 70, 2
	f := newFakeServer(t, procs, cells, 4, p)
	defer f.close()
	conn, err := Connect(f.net, f.mainRecv.Addr(), 1, 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	fields := make([][]float64, p+2)
	for i := range fields {
		fields[i] = make([]float64, cells)
		for c := range fields[i] {
			fields[i][c] = float64(i*1000 + c)
		}
	}
	if err := conn.SendTimestep(2, fields); err != nil {
		t.Fatal(err)
	}

	seen := make([]int, cells)
	for got := 0; got < conn.Messages(); got++ {
		select {
		case d := <-f.data:
			if d.Timestep != 2 || d.GroupID != 1 || len(d.Fields) != p+2 {
				t.Fatalf("bad data message %+v", d)
			}
			for c := d.CellLo; c < d.CellHi; c++ {
				seen[c]++
				// Values carry their origin: verify slicing is aligned.
				if d.Fields[1][c-d.CellLo] != float64(1000+c) {
					t.Fatalf("cell %d misrouted: %v", c, d.Fields[1][c-d.CellLo])
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatal("missing data message")
		}
	}
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d delivered %d times", c, n)
		}
	}
}

func TestRunGroupLockstep(t *testing.T) {
	const cells, timesteps, p = 24, 6, 2
	f := newFakeServer(t, 2, cells, timesteps, p)
	defer f.close()

	// A simulation that records the steps it was allowed to produce.
	sim := SimFunc(func(row []float64, emit func(step int, field []float64) bool) {
		field := make([]float64, cells)
		for s := 0; s < timesteps; s++ {
			for c := range field {
				field[c] = row[0] + float64(s)
			}
			if !emit(s, field) {
				return
			}
		}
	})
	rows := make([][]float64, p+2)
	for i := range rows {
		rows[i] = []float64{float64(i), 1}
	}
	if err := RunGroup(f.net, f.mainRecv.Addr(), RunConfig{
		GroupID: 3, SimRanks: 2, Rows: rows, Sim: sim,
	}); err != nil {
		t.Fatal(err)
	}
	// Per (step) each server proc receives its share; count total messages.
	want := timesteps * 2 // 2 sim-ranks aligned onto 2 server procs
	got := 0
	timeout := time.After(2 * time.Second)
	for got < want {
		select {
		case d := <-f.data:
			got++
			if d.Timestep < 0 || d.Timestep >= timesteps {
				t.Fatalf("bad timestep %d", d.Timestep)
			}
		case <-timeout:
			t.Fatalf("got %d of %d messages", got, want)
		}
	}
}

func TestRunGroupValidation(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	if err := RunGroup(net, "x", RunConfig{Rows: [][]float64{{1}}, Sim: SimFunc(nil)}); err == nil {
		t.Fatal("too few rows accepted")
	}
	rows := [][]float64{{1}, {2}, {3}}
	if err := RunGroup(net, "x", RunConfig{Rows: rows}); err == nil {
		t.Fatal("nil sim accepted")
	}
}

func TestRunGroupRowMismatchRejected(t *testing.T) {
	f := newFakeServer(t, 1, 10, 2, 3) // server expects p+2 = 5 rows
	defer f.close()
	rows := [][]float64{{1}, {2}, {3}} // only 3
	err := RunGroup(f.net, f.mainRecv.Addr(), RunConfig{
		GroupID: 0, Rows: rows,
		Sim: SimFunc(func(row []float64, emit func(int, []float64) bool) {}),
	})
	if err == nil {
		t.Fatal("row/p mismatch accepted")
	}
}

func TestRunGroupSimulationEndsEarly(t *testing.T) {
	const cells, timesteps = 8, 5
	f := newFakeServer(t, 1, cells, timesteps, 1)
	defer f.close()
	// Simulation stops after 2 steps: the group must fail, not hang.
	sim := SimFunc(func(row []float64, emit func(step int, field []float64) bool) {
		field := make([]float64, cells)
		emit(0, field)
		emit(1, field)
	})
	rows := [][]float64{{1}, {2}, {3}}
	err := RunGroup(f.net, f.mainRecv.Addr(), RunConfig{GroupID: 1, Rows: rows, Sim: sim})
	if err == nil {
		t.Fatal("early-ending simulation not reported")
	}
}
