package client

import (
	"errors"
	"fmt"
	"time"

	olog "melissa/internal/obs/log"
	"melissa/internal/wire"
)

// errDurableDrain marks a WaitDurable timeout (as opposed to a connection
// failure): the server is reachable but did not commit a checkpoint past the
// group's last step within the bound. Callers typically accept the legacy
// at-risk window on it rather than failing the attempt.
var errDurableDrain = errors.New("client: durable drain timed out")

// Durable-frontier client side. The server advertises, on every Welcome and
// ResumeAck, the last step per (group, rank) whose fold state a committed
// checkpoint covers. Steps at or below that floor can never be asked for
// again — a crashed server restores at least that far — so the floor, not the
// fold frontier, is the contract for how long a route cut must stay
// resendable. The retention ring is the physical cap; when the retained
// steps beyond the floor cross a high-water mark the connection asks the
// server for an early checkpoint (fire-and-forget advice) instead of ever
// blocking ingest, and if the ring wraps anyway a post-crash reconnect
// surfaces errResumeGap and the launcher falls back to a full replay.

// defaultDurableDrainTimeout bounds WaitDurable when the connection has no
// explicit DurableDrainTimeout.
const defaultDurableDrainTimeout = 30 * time.Second

// durablePollCap caps the exponential poll backoff inside WaitDurable.
const durablePollCap = 100 * time.Millisecond

// noteAck folds a ResumeAck's durable frontier into the per-rank floor.
// Every resume handshake carries one, so reconnects, resume queries and
// drain polls all refresh it. A NoDurability sentinel (server running
// without a checkpoint directory) switches the whole connection back to
// fold-frontier retention.
func (c *Connection) noteAck(ack *wire.ResumeAck) {
	if ack.DurableStep == wire.NoDurability {
		c.durability = false
		return
	}
	if c.durable == nil || ack.ProcRank < 0 || ack.ProcRank >= len(c.durable) {
		return
	}
	if ack.DurableStep > c.durable[ack.ProcRank] {
		c.durable[ack.ProcRank] = ack.DurableStep
	}
}

// highWater resolves the per-route durable high-water mark in steps:
// explicit knob, else 3/4 of the retention window.
func (c *Connection) highWater() int {
	if c.CheckpointHighWater > 0 {
		return c.CheckpointHighWater
	}
	w := c.ResendWindow
	if w <= 0 {
		w = defaultResendWindow
	}
	hw := w * 3 / 4
	if hw < 1 {
		hw = 1
	}
	return hw
}

// noteRetained runs after a route cut enters the retention ring: when the
// steps retained beyond rank's durable floor cross the high-water mark, it
// asks that server process for an early checkpoint so the durable frontier
// advances before the ring wraps. The request is advice — ingest never
// blocks on it — and requests are spaced at least half a high-water of
// steps apart per rank so a stalled checkpointer is not flooded.
func (c *Connection) noteRetained(rank, step int) {
	// Without a reconnect budget the retention ring is never replayed, so
	// there is nothing for the durable frontier to protect — stay silent.
	if !c.Retry.enabled() || !c.durability || c.durable == nil || rank >= len(c.durable) {
		return
	}
	hw := c.highWater()
	if step-c.durable[rank] < hw {
		return
	}
	if last := c.ckptReqAt[rank]; last >= 0 && step-last < (hw+1)/2 {
		return
	}
	c.ckptReqAt[rank] = step
	if s := c.senders[rank]; s != nil {
		// Best-effort: a broken connection surfaces on the next data frame.
		_ = s.Send(wire.Encode(&wire.CheckpointReq{GroupID: c.GroupID}))
		cCkptReqs.Inc()
	}
}

// WaitDurable blocks until every server process's durable frontier covers
// the last timestep this connection sent, nudging the server with
// early-checkpoint requests while it polls. Groups call it once at
// completion (after the final Flush): a finished group has no live process
// left to resend its window, so its contribution must be durable before it
// exits or a later server crash would silently roll it back. Returns nil
// immediately when the server does not checkpoint, nothing was sent, or the
// group runs without a reconnect budget (then a post-crash server restart
// replays the whole group anyway — the legacy protocol — and the drain would
// only slow every study down); a timeout returns an error and the caller
// decides whether to accept the legacy at-risk window.
func (c *Connection) WaitDurable(timeout time.Duration) error {
	if !c.Retry.enabled() || !c.durability || c.maxStep < 0 || c.durable == nil {
		return nil
	}
	if timeout < 0 {
		return nil
	}
	if timeout == 0 {
		timeout = defaultDurableDrainTimeout
	}
	deadline := time.Now().Add(timeout)
	poll := 2 * time.Millisecond
	for rank := range c.senders {
		if c.senders[rank] == nil {
			continue
		}
		for c.durability && c.durable[rank] < c.maxStep {
			ack, err := c.resumeQueryOn(c.senders[rank], rank)
			if err != nil {
				if !c.Retry.enabled() {
					return err
				}
				if rerr := c.recoverRank(rank, err); rerr != nil {
					return rerr
				}
				continue
			}
			c.noteAck(ack)
			if !c.durability || c.durable[rank] >= c.maxStep {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%w: group %d server %d durable step %d < last sent %d",
					errDurableDrain, c.GroupID, rank, c.durable[rank], c.maxStep)
			}
			_ = c.senders[rank].Send(wire.Encode(&wire.CheckpointReq{GroupID: c.GroupID}))
			cCkptReqs.Inc()
			time.Sleep(poll)
			if poll < durablePollCap {
				poll *= 2
			}
		}
	}
	olog.Debugw("client.durable_drain", "group", c.GroupID, "last_step", c.maxStep)
	return nil
}
