package client

import (
	"melissa/internal/obs"
)

// Client-side instrumentation: what the simulation groups are doing to the
// wire. The adaptive-batching loop's two observable halves live here — the
// effective batch size each timestep was routed with, and the send-queue
// occupancy the fallback controller steers on — plus the byte counters whose
// end-of-run sums Connection.WireStats already reports.
var (
	cMessages = obs.NewCounter("melissa_client_messages_total",
		"Stage-2 field messages sent to server processes.")
	cWireBytes = obs.NewCounter("melissa_client_wire_bytes_total",
		"Field payload bytes as put on the wire.")
	cRawBytes = obs.NewCounter("melissa_client_raw_bytes_total",
		"Bytes the same payloads cost in the uncompressed framing.")
	cBatchSteps = obs.NewHistogram("melissa_client_batch_steps",
		"Effective timestep batch size each SendTimestep was routed with (adaptive batching).")
	cSendQueue = obs.NewGauge("melissa_client_send_queue_occupancy",
		"Worst transport send-queue occupancy fraction [0,1] across this process's server connections.")

	// Connection-resilience counters: how often groups had to reconnect,
	// what the resume handshake saved (pieces never resent) and what the
	// retention window had to replay.
	cReconnects = obs.NewCounter("melissa_client_reconnects_total",
		"Server connections re-established after a dial or send failure.")
	cResumeAcks = obs.NewCounter("melissa_client_resume_acks_total",
		"Resume handshakes answered by server processes (fold-frontier queries).")
	cResentFrames = obs.NewCounter("melissa_client_resent_frames_total",
		"Retained frames re-sent after a reconnect (the unacked window).")
	cSkippedPieces = obs.NewCounter("melissa_client_resume_skipped_pieces_total",
		"Route pieces a resumed attempt skipped because the server had already folded them.")
	cCkptReqs = obs.NewCounter("melissa_client_checkpoint_requests_total",
		"Early-checkpoint requests sent because retained-but-not-durable steps crossed the high-water mark (or a completion drain was waiting).")
)
