package studies

import (
	"testing"
)

func TestBuildTubeBundle(t *testing.T) {
	st, err := Build("tubebundle", 48, 16, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 48*16 || st.Timesteps != 100 || st.P() != 6 {
		t.Fatalf("shape: cells=%d steps=%d p=%d", st.Cells, st.Timesteps, st.P())
	}
	if st.Nx != 48 || st.Ny != 16 {
		t.Fatalf("grid %dx%d", st.Nx, st.Ny)
	}
	if len(st.ParamNames) != 6 {
		t.Fatalf("param names %v", st.ParamNames)
	}
	// The simulation emits exactly Timesteps fields of Cells values.
	design := st.Design(4, 1)
	steps := 0
	st.Sim.Run(design.RowA(0), func(step int, field []float64) bool {
		if step != steps || len(field) != st.Cells {
			t.Fatalf("emit step=%d len=%d", step, len(field))
		}
		steps++
		return steps < 3 // abort early: Run must respect it
	})
	if steps != 3 {
		t.Fatalf("abort ignored: %d steps", steps)
	}
}

func TestBuildIshigami(t *testing.T) {
	st, err := Build("ishigami", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 1 || st.Timesteps != 1 || st.P() != 3 {
		t.Fatalf("shape: %+v", st)
	}
	var got []float64
	st.Sim.Run([]float64{0.5, 1.0, -0.5}, func(step int, field []float64) bool {
		got = append(got, field...)
		return true
	})
	if len(got) != 1 {
		t.Fatalf("emitted %d values", len(got))
	}
}

func TestBuildSynthetic(t *testing.T) {
	st, err := Build("synthetic", 0, 0, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 64 || st.Timesteps != 5 || st.P() != 3 {
		t.Fatalf("shape: %+v", st)
	}
	count := 0
	st.Sim.Run([]float64{1, 0.5, 0.2}, func(step int, field []float64) bool {
		if len(field) != 64 {
			t.Fatalf("field len %d", len(field))
		}
		count++
		return true
	})
	if count != 5 {
		t.Fatalf("emitted %d steps", count)
	}
	// Deterministic: same row, same output (restart exactness relies on it).
	var a, b float64
	st.Sim.Run([]float64{1, 2, 3}, func(step int, f []float64) bool { a = f[10]; return false })
	st.Sim.Run([]float64{1, 2, 3}, func(step int, f []float64) bool { b = f[10]; return false })
	if a != b {
		t.Fatal("synthetic sim not deterministic")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("bogus", 0, 0, 0, 0); err == nil {
		t.Error("unknown study accepted")
	}
	if _, err := Build("synthetic", 0, 0, 0, 5); err == nil {
		t.Error("synthetic without cells accepted")
	}
	if _, err := Build("tubebundle", 1, 1, 0, 0); err == nil {
		t.Error("degenerate tubebundle grid accepted")
	}
}

func TestDesignConsistencyAcrossProcesses(t *testing.T) {
	// Two independently built studies (as separate client processes would)
	// must produce identical group rows from the same flags.
	a, _ := Build("synthetic", 0, 0, 32, 2)
	b, _ := Build("synthetic", 0, 0, 32, 2)
	da := a.Design(10, 77)
	db := b.Design(10, 77)
	for g := 0; g < 10; g++ {
		ra, rb := da.GroupRows(g), db.GroupRows(g)
		for s := range ra {
			for j := range ra[s] {
				if ra[s][j] != rb[s][j] {
					t.Fatalf("group %d sim %d param %d differs", g, s, j)
				}
			}
		}
	}
}
