// Package studies provides the built-in study definitions shared by the
// command-line tools: the tube-bundle CFD case of the paper, the Ishigami
// benchmark, and a cheap synthetic field model. A study is identified by a
// name plus shape flags, so independent processes (server, clients,
// launcher) reconstruct identical designs from the same flags — the way the
// paper's launcher scripts and Code_Saturne cases share one configuration.
package studies

import (
	"fmt"
	"math"

	"melissa/internal/cfd"
	"melissa/internal/client"
	"melissa/internal/sampling"
	"melissa/internal/sobol"
)

// Study bundles everything a client or launcher needs to run one use case.
type Study struct {
	Name       string
	Params     []sampling.Distribution
	Cells      int
	Timesteps  int
	Sim        client.Simulation
	ParamNames []string
	// Nx, Ny are set for grid-shaped studies (rendering).
	Nx, Ny int
}

// P returns the parameter count.
func (s *Study) P() int { return len(s.Params) }

// Design builds the pick-freeze design for n groups.
func (s *Study) Design(n int, seed uint64) *sampling.Design {
	return sampling.NewDesign(s.Params, n, seed)
}

// Build constructs a named study. Supported names: "tubebundle" (uses nx,
// ny; 100 timesteps; the Sec. 5.2 case), "ishigami" (scalar, 1 timestep),
// "synthetic" (cells×timesteps field with an additive/quadratic model).
func Build(name string, nx, ny, cells, timesteps int) (*Study, error) {
	switch name {
	case "tubebundle":
		cfg := cfd.DefaultConfig(nx, ny)
		solver, err := cfd.NewSolver(cfg)
		if err != nil {
			return nil, err
		}
		return &Study{
			Name:      "tubebundle",
			Params:    cfd.StudyDistributions(cfg),
			Cells:     solver.Cells(),
			Timesteps: cfg.Timesteps,
			Sim: client.SimFunc(func(row []float64, emit func(int, []float64) bool) {
				solver.RunRow(row, emit)
			}),
			ParamNames: cfd.ParamNames[:],
			Nx:         nx, Ny: ny,
		}, nil
	case "ishigami":
		fn := sobol.Ishigami()
		return &Study{
			Name:      "ishigami",
			Params:    fn.Params,
			Cells:     1,
			Timesteps: 1,
			Sim: client.SimFunc(func(row []float64, emit func(int, []float64) bool) {
				emit(0, []float64{fn.Eval(row)})
			}),
			ParamNames: []string{"x1", "x2", "x3"},
		}, nil
	case "synthetic":
		if cells < 1 || timesteps < 1 {
			return nil, fmt.Errorf("studies: synthetic needs cells/timesteps, got %d/%d", cells, timesteps)
		}
		params := []sampling.Distribution{
			sampling.Uniform{Low: -1, High: 1},
			sampling.Uniform{Low: -1, High: 1},
			sampling.Normal{Mean: 0, Std: 1},
		}
		return &Study{
			Name:      "synthetic",
			Params:    params,
			Cells:     cells,
			Timesteps: timesteps,
			Sim: client.SimFunc(func(row []float64, emit func(int, []float64) bool) {
				field := make([]float64, cells)
				for t := 0; t < timesteps; t++ {
					for c := range field {
						x := float64(c) / float64(cells)
						field[c] = row[0]*math.Sin(2*math.Pi*x) +
							row[1]*x + row[2]*row[2]*(1+float64(t))*0.1
					}
					if !emit(t, field) {
						return
					}
				}
			}),
			ParamNames: []string{"amp", "slope", "offset"},
		}, nil
	default:
		return nil, fmt.Errorf("studies: unknown study %q (want tubebundle, ishigami or synthetic)", name)
	}
}
