// Package faults provides deterministic fault injection for the resilience
// experiments (Sec. 4.2, 5.4): group crashes, stragglers/hangs, zombies that
// never contact the server, and server crashes. A Plan is a declarative list
// of faults keyed by (group, attempt), so re-running a study with the same
// plan reproduces the same failure sequence.
package faults

import (
	"errors"
	"fmt"
	"time"
)

// Kind classifies an injected group fault.
type Kind int

// Group fault kinds.
const (
	// Crash makes the group fail (job exits with an error) at a step.
	Crash Kind = iota
	// Hang makes the group stop sending without exiting (straggler); only
	// the server's message timeout can catch it (Sec. 4.2.2, case 1).
	Hang
	// Zombie makes the group look running to the scheduler while never
	// contacting the server (Sec. 4.2.2, case 2).
	Zombie
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Zombie:
		return "zombie"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected marks failures produced by the plan (vs. genuine bugs).
var ErrInjected = errors.New("faults: injected failure")

// GroupFault describes one planned group failure.
type GroupFault struct {
	// Group is the design row / group id the fault applies to.
	Group int
	// Attempt selects which execution attempt fails (0 = first run,
	// 1 = first restart, ...). Later attempts succeed, letting the study
	// converge, unless the plan holds further entries.
	Attempt int
	// Kind is the failure mode.
	Kind Kind
	// AtStep is the timestep before which the fault fires.
	AtStep int
	// HangFor bounds a Hang (0 = hang until killed); mostly for tests that
	// must not leak goroutines forever.
	HangFor time.Duration
}

// Plan is a deterministic fault schedule.
type Plan struct {
	faults map[[2]int]GroupFault
	// ServerCrashAfter kills the server once, after this run time (0 = no
	// server fault).
	ServerCrashAfter time.Duration
	serverDone       bool
}

// NewPlan builds a plan from group faults.
func NewPlan(faults ...GroupFault) *Plan {
	p := &Plan{faults: make(map[[2]int]GroupFault)}
	for _, f := range faults {
		p.faults[[2]int{f.Group, f.Attempt}] = f
	}
	return p
}

// WithServerCrash schedules a one-shot server crash after d of study time.
func (p *Plan) WithServerCrash(d time.Duration) *Plan {
	p.ServerCrashAfter = d
	return p
}

// GroupFaultFor returns the fault planned for (group, attempt), if any.
func (p *Plan) GroupFaultFor(group, attempt int) (GroupFault, bool) {
	if p == nil {
		return GroupFault{}, false
	}
	f, ok := p.faults[[2]int{group, attempt}]
	return f, ok
}

// IsZombie reports whether (group, attempt) should never contact the server.
func (p *Plan) IsZombie(group, attempt int) bool {
	f, ok := p.GroupFaultFor(group, attempt)
	return ok && f.Kind == Zombie
}

// BeforeStepHook builds the client.RunConfig.BeforeStep hook implementing
// the planned fault for (group, attempt). It returns nil when the attempt
// is clean. A Hang sleeps on a timer but aborts immediately when stop closes,
// so a supervisor that kills the hung attempt reclaims its goroutine at once
// instead of leaking it for the rest of the (unbounded) hang; a nil stop
// keeps the plain bounded-sleep behavior.
func (p *Plan) BeforeStepHook(group, attempt int, stop <-chan struct{}) func(step int) error {
	f, ok := p.GroupFaultFor(group, attempt)
	if !ok || f.Kind == Zombie {
		return nil // zombies are handled before the group starts
	}
	switch f.Kind {
	case Crash:
		return func(step int) error {
			if step >= f.AtStep {
				return fmt.Errorf("%w: group %d attempt %d crashed at step %d",
					ErrInjected, group, attempt, step)
			}
			return nil
		}
	case Hang:
		return func(step int) error {
			if step >= f.AtStep {
				d := f.HangFor
				if d <= 0 {
					d = time.Hour // effectively forever at test scale
				}
				timer := time.NewTimer(d)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-stop:
					return fmt.Errorf("%w: group %d attempt %d hang cancelled at step %d",
						ErrInjected, group, attempt, step)
				}
				return fmt.Errorf("%w: group %d attempt %d hung at step %d",
					ErrInjected, group, attempt, step)
			}
			return nil
		}
	default:
		return nil
	}
}

// ShouldCrashServer reports (once) whether the server crash is due.
func (p *Plan) ShouldCrashServer(elapsed time.Duration) bool {
	if p == nil || p.ServerCrashAfter <= 0 || p.serverDone {
		return false
	}
	if elapsed >= p.ServerCrashAfter {
		p.serverDone = true
		return true
	}
	return false
}

// Len returns the number of planned group faults.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}
