package faults

import (
	"errors"
	"testing"
	"time"
)

func TestPlanLookup(t *testing.T) {
	p := NewPlan(
		GroupFault{Group: 3, Attempt: 0, Kind: Crash, AtStep: 5},
		GroupFault{Group: 3, Attempt: 1, Kind: Hang, AtStep: 2},
		GroupFault{Group: 9, Attempt: 0, Kind: Zombie},
	)
	if p.Len() != 3 {
		t.Fatalf("len %d", p.Len())
	}
	if f, ok := p.GroupFaultFor(3, 0); !ok || f.Kind != Crash || f.AtStep != 5 {
		t.Fatalf("lookup: %+v %v", f, ok)
	}
	if _, ok := p.GroupFaultFor(3, 2); ok {
		t.Fatal("attempt 2 should be clean")
	}
	if !p.IsZombie(9, 0) || p.IsZombie(9, 1) || p.IsZombie(3, 0) {
		t.Fatal("zombie classification wrong")
	}
}

func TestCrashHook(t *testing.T) {
	p := NewPlan(GroupFault{Group: 1, Attempt: 0, Kind: Crash, AtStep: 3})
	hook := p.BeforeStepHook(1, 0, nil)
	if hook == nil {
		t.Fatal("no hook for planned crash")
	}
	for step := 0; step < 3; step++ {
		if err := hook(step); err != nil {
			t.Fatalf("crashed early at %d: %v", step, err)
		}
	}
	err := hook(3)
	if err == nil {
		t.Fatal("no crash at the planned step")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crash not marked injected: %v", err)
	}
}

func TestHangHookBounded(t *testing.T) {
	p := NewPlan(GroupFault{Group: 2, Attempt: 1, Kind: Hang, AtStep: 0, HangFor: 20 * time.Millisecond})
	hook := p.BeforeStepHook(2, 1, nil)
	start := time.Now()
	err := hook(0)
	if err == nil {
		t.Fatal("hang hook returned no error")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("hang too short: %v", elapsed)
	}
}

func TestHangHookCancellable(t *testing.T) {
	p := NewPlan(GroupFault{Group: 2, Attempt: 0, Kind: Hang, AtStep: 0}) // unbounded hang
	stop := make(chan struct{})
	hook := p.BeforeStepHook(2, 0, stop)
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- hook(0) }()
	close(stop)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled hang returned no error")
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("cancelled hang not marked injected: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("hang did not cancel (waited %v)", time.Since(start))
	}
}

func TestCleanAttemptsHaveNoHook(t *testing.T) {
	p := NewPlan(GroupFault{Group: 1, Attempt: 0, Kind: Crash, AtStep: 0})
	if p.BeforeStepHook(1, 1, nil) != nil {
		t.Fatal("retry attempt should be clean")
	}
	if p.BeforeStepHook(2, 0, nil) != nil {
		t.Fatal("unplanned group should be clean")
	}
	// Zombies have no step hook: they never start stepping.
	z := NewPlan(GroupFault{Group: 4, Attempt: 0, Kind: Zombie})
	if z.BeforeStepHook(4, 0, nil) != nil {
		t.Fatal("zombie should have no step hook")
	}
}

func TestNilPlanIsClean(t *testing.T) {
	var p *Plan
	if _, ok := p.GroupFaultFor(0, 0); ok {
		t.Fatal("nil plan has faults")
	}
	if p.IsZombie(0, 0) || p.Len() != 0 {
		t.Fatal("nil plan misbehaves")
	}
	if p.ShouldCrashServer(time.Hour) {
		t.Fatal("nil plan crashes servers")
	}
}

func TestServerCrashFiresOnce(t *testing.T) {
	p := NewPlan().WithServerCrash(100 * time.Millisecond)
	if p.ShouldCrashServer(50 * time.Millisecond) {
		t.Fatal("crashed early")
	}
	if !p.ShouldCrashServer(150 * time.Millisecond) {
		t.Fatal("did not crash at due time")
	}
	if p.ShouldCrashServer(200 * time.Millisecond) {
		t.Fatal("crashed twice")
	}
}

func TestKindStrings(t *testing.T) {
	if Crash.String() != "crash" || Hang.String() != "hang" || Zombie.String() != "zombie" {
		t.Fatal("kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}
