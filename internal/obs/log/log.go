// Package log is the framework's leveled structured logger. Call sites emit
// an event name plus key/value fields; the output is either human-readable
// text (default) or JSON lines (-log-json), and a level threshold
// (-log-level) silences the chatty tiers.
//
// It replaces the scattered stdlib log.Printf calls so study lifecycle
// events — group connect/complete, checkpoint commit/skip, malformed-frame
// drop — are machine-parseable and individually rate-limitable. The package
// is intended to be imported with an alias (olog) to avoid shadowing the
// stdlib.
package log

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Levels, least to most severe. Off disables everything.
const (
	Debug Level = iota
	Info
	Warn
	Error
	Off
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "off"
}

// ParseLevel reads a level name ("debug", "info", "warn", "error", "off").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	case "off", "none":
		return Off, nil
	}
	return Info, fmt.Errorf("unknown log level %q", s)
}

// Logger writes leveled events. The zero value is unusable; use New or the
// package-level Default.
type Logger struct {
	level atomic.Int32
	json  atomic.Bool

	mu  sync.Mutex
	out io.Writer
	now func() time.Time // test hook
}

// New returns a text-format logger at Info writing to w.
func New(w io.Writer) *Logger {
	l := &Logger{out: w, now: time.Now}
	l.level.Store(int32(Info))
	return l
}

// Default is the process-wide logger (stderr, text, Info).
var Default = New(os.Stderr)

// SetLevel sets the minimum severity that is emitted.
func (l *Logger) SetLevel(v Level) { l.level.Store(int32(v)) }

// SetJSON switches between JSON-lines (true) and text output.
func (l *Logger) SetJSON(v bool) { l.json.Store(v) }

// SetOutput redirects the logger (tests, log files).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.out = w
}

// Enabled reports whether events at v would be emitted — guard expensive
// field construction with it.
func (l *Logger) Enabled(v Level) bool { return v >= Level(l.level.Load()) }

// Event emits one event: a short dotted name ("server.group_complete") and
// alternating key, value field pairs. Values are formatted with %v in text
// mode and JSON-marshaled in JSON mode (falling back to the %v string for
// unmarshalable values).
func (l *Logger) Event(v Level, event string, kv ...any) {
	if !l.Enabled(v) {
		return
	}
	ts := l.now()
	var b strings.Builder
	if l.json.Load() {
		writeJSONLine(&b, ts, v, event, kv)
	} else {
		writeTextLine(&b, ts, v, event, kv)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.out, b.String())
}

// Debugf-style helpers for each level.

// Debugw emits a Debug event.
func (l *Logger) Debugw(event string, kv ...any) { l.Event(Debug, event, kv...) }

// Infow emits an Info event.
func (l *Logger) Infow(event string, kv ...any) { l.Event(Info, event, kv...) }

// Warnw emits a Warn event.
func (l *Logger) Warnw(event string, kv ...any) { l.Event(Warn, event, kv...) }

// Errorw emits an Error event.
func (l *Logger) Errorw(event string, kv ...any) { l.Event(Error, event, kv...) }

// Package-level helpers on Default.

// Debugw emits a Debug event on Default.
func Debugw(event string, kv ...any) { Default.Event(Debug, event, kv...) }

// Infow emits an Info event on Default.
func Infow(event string, kv ...any) { Default.Event(Info, event, kv...) }

// Warnw emits a Warn event on Default.
func Warnw(event string, kv ...any) { Default.Event(Warn, event, kv...) }

// Errorw emits an Error event on Default.
func Errorw(event string, kv ...any) { Default.Event(Error, event, kv...) }

func writeTextLine(b *strings.Builder, ts time.Time, v Level, event string, kv []any) {
	b.WriteString(ts.Format("2006-01-02T15:04:05.000"))
	b.WriteByte(' ')
	b.WriteString(strings.ToUpper(v.String()))
	b.WriteByte(' ')
	b.WriteString(event)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(b, " %v=%v", kv[i], kv[i+1])
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(b, " !MISSING_VALUE=%v", kv[len(kv)-1])
	}
	b.WriteByte('\n')
}

func writeJSONLine(b *strings.Builder, ts time.Time, v Level, event string, kv []any) {
	b.WriteString(`{"ts":`)
	b.WriteString(fmt.Sprintf("%q", ts.Format(time.RFC3339Nano)))
	b.WriteString(`,"level":`)
	b.WriteString(fmt.Sprintf("%q", v.String()))
	b.WriteString(`,"event":`)
	b.WriteString(jsonValue(event))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(',')
		b.WriteString(jsonValue(fmt.Sprintf("%v", kv[i])))
		b.WriteByte(':')
		b.WriteString(jsonValue(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		b.WriteString(`,"!MISSING_VALUE":`)
		b.WriteString(jsonValue(kv[len(kv)-1]))
	}
	b.WriteString("}\n")
}

func jsonValue(v any) string {
	if d, ok := v.(time.Duration); ok {
		v = d.String()
	}
	out, err := json.Marshal(v)
	if err != nil {
		out, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return string(out)
}

// Limiter rate-limits per-key log emission: Allow returns true at most once
// per Interval for each key, along with how many calls for that key were
// suppressed since the last allowed one. Keys are caller-chosen uint64s
// (group IDs, a sentinel for unattributable events). The internal map is
// reset whenever it exceeds a bound, so an attacker churning keys cannot
// grow it without limit.
type Limiter struct {
	// Interval is the minimum spacing between allowed events per key.
	Interval time.Duration

	mu      sync.Mutex
	entries map[uint64]*limitEntry
	now     func() time.Time // test hook
}

type limitEntry struct {
	last       time.Time
	suppressed int64
}

// limiterMaxKeys bounds the tracked-key map; past it the map resets (old
// keys then log once more, which is harmless).
const limiterMaxKeys = 4096

// Allow reports whether an event for key should be logged now, and if so
// how many events were suppressed since the previous allowed one.
func (r *Limiter) Allow(key uint64) (ok bool, suppressed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	nowFn := r.now
	if nowFn == nil {
		nowFn = time.Now
	}
	now := nowFn()
	if r.entries == nil || len(r.entries) > limiterMaxKeys {
		r.entries = make(map[uint64]*limitEntry)
	}
	e := r.entries[key]
	if e == nil {
		r.entries[key] = &limitEntry{last: now}
		return true, 0
	}
	if now.Sub(e.last) >= r.Interval {
		n := e.suppressed
		e.last = now
		e.suppressed = 0
		return true, n
	}
	e.suppressed++
	return false, 0
}
