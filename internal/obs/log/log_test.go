package log

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2017, 11, 13, 9, 30, 0, 0, time.UTC) // SC'17 week
}

func TestTextFormat(t *testing.T) {
	var b strings.Builder
	l := New(&b)
	l.now = fixedNow
	l.Infow("server.group_complete", "group", 7, "folds", 1234)
	got := b.String()
	want := "2017-11-13T09:30:00.000 INFO server.group_complete group=7 folds=1234\n"
	if got != want {
		t.Fatalf("text line = %q, want %q", got, want)
	}
}

func TestJSONFormat(t *testing.T) {
	var b strings.Builder
	l := New(&b)
	l.now = fixedNow
	l.SetJSON(true)
	l.Warnw("server.drop", "reason", "decode", "bytes", 42, "stall", 3*time.Millisecond)
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("not a JSON line: %v\n%s", err, b.String())
	}
	if doc["level"] != "warn" || doc["event"] != "server.drop" ||
		doc["reason"] != "decode" || doc["bytes"] != float64(42) || doc["stall"] != "3ms" {
		t.Fatalf("bad JSON doc: %v", doc)
	}
}

func TestLevelThreshold(t *testing.T) {
	var b strings.Builder
	l := New(&b)
	l.Debugw("hidden")
	l.SetLevel(Error)
	l.Infow("hidden")
	l.Warnw("hidden")
	l.Errorw("shown")
	if n := strings.Count(b.String(), "\n"); n != 1 {
		t.Fatalf("emitted %d lines, want 1:\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "shown") {
		t.Fatalf("error line missing:\n%s", b.String())
	}
	if l.Enabled(Warn) || !l.Enabled(Error) {
		t.Fatal("Enabled disagrees with SetLevel(Error)")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": Debug, "info": Info, "": Info, "Warn": Warn,
		"warning": Warn, "ERROR": Error, "off": Off,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}

func TestOddFieldCount(t *testing.T) {
	var b strings.Builder
	l := New(&b)
	l.Infow("odd", "danglingkey")
	if !strings.Contains(b.String(), "!MISSING_VALUE=danglingkey") {
		t.Fatalf("dangling key not flagged:\n%s", b.String())
	}
}

func TestLimiter(t *testing.T) {
	now := time.Unix(0, 0)
	lim := &Limiter{Interval: time.Second, now: func() time.Time { return now }}

	if ok, _ := lim.Allow(1); !ok {
		t.Fatal("first event suppressed")
	}
	for i := 0; i < 5; i++ {
		if ok, _ := lim.Allow(1); ok {
			t.Fatal("event inside interval allowed")
		}
	}
	// An independent key is not limited by key 1's burst.
	if ok, _ := lim.Allow(2); !ok {
		t.Fatal("independent key suppressed")
	}
	now = now.Add(time.Second)
	ok, suppressed := lim.Allow(1)
	if !ok || suppressed != 5 {
		t.Fatalf("after interval: ok=%v suppressed=%d, want true, 5", ok, suppressed)
	}
	// Counter resets after reporting.
	now = now.Add(time.Second)
	if _, s := lim.Allow(1); s != 0 {
		t.Fatalf("suppressed count did not reset: %d", s)
	}
}

func TestLimiterKeyBound(t *testing.T) {
	now := time.Unix(0, 0)
	lim := &Limiter{Interval: time.Hour, now: func() time.Time { return now }}
	for k := uint64(0); k < limiterMaxKeys+10; k++ {
		lim.Allow(k)
	}
	if len(lim.entries) > limiterMaxKeys+1 {
		t.Fatalf("limiter map grew unbounded: %d entries", len(lim.entries))
	}
}

func TestConcurrentLogging(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	l := New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Infow("tick", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if n := strings.Count(b.String(), "\n"); n != 400 {
		t.Fatalf("lines = %d, want 400", n)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
