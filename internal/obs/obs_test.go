package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("melissa_test_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-7) // dropped: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("melissa_test_gauge", "level")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	// Get-or-create: same name returns the same metric.
	if c2 := r.NewCounter("melissa_test_total", "events"); c2 != c {
		t.Fatal("NewCounter with same name returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("melissa_test_seconds", "latency")
	obs := []float64{0, 1e-9, 1e-6, 1.5e-3, 0.25, 3, 100}
	for _, v := range obs {
		h.Observe(v)
	}
	if got := h.Count(); got != int64(len(obs)) {
		t.Fatalf("count = %d, want %d", got, len(obs))
	}
	wantSum := 0.0
	for _, v := range obs {
		wantSum += v
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
	// Cumulative bucket counts must be non-decreasing and end at count.
	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	lines := strings.Split(b.String(), "\n")
	var bucketLines int
	for _, line := range lines {
		if !strings.HasPrefix(line, "melissa_test_seconds_bucket") {
			continue
		}
		bucketLines++
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d", n, prev)
		}
		prev = n
	}
	if bucketLines != histBuckets+1 {
		t.Fatalf("bucket lines = %d, want %d", bucketLines, histBuckets+1)
	}
	if prev != int64(len(obs)) {
		t.Fatalf("+Inf bucket = %d, want %d", prev, len(obs))
	}
}

func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("melissa_test_drops_total", "drops", "reason")
	v.With("decode").Add(3)
	v.With("shape").Inc()
	if v.With("decode") != v.With("decode") {
		t.Fatal("With not stable for same label value")
	}
	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`melissa_test_drops_total{reason="decode"} 3`,
		`melissa_test_drops_total{reason="shape"} 1`,
		"# TYPE melissa_test_drops_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("melissa_test_live", "live value", func() float64 { return 1 })
	r.NewGaugeFunc("melissa_test_live", "live value", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "melissa_test_live 2") {
		t.Fatalf("gauge func not replaced:\n%s", b.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("melissa_test_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge did not panic")
		}
	}()
	r.NewGauge("melissa_test_conflict", "")
}

// TestExpositionFormat checks every sample line against the text-format
// grammar: name{label="value"}... value.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("melissa_a_total", "a\nmultiline \\help").Inc()
	r.NewGauge("melissa_b", "").Set(math.Inf(1))
	r.NewHistogram("melissa_c_seconds", "c").Observe(0.1)
	r.NewGaugeVec("melissa_d", "d", "proc").With(`we"ird\`).Set(1)
	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			if strings.Count(line, "\n") != 0 {
				t.Fatalf("unescaped newline in %q", line)
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		val := line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("bad value %q in line %q", val, line)
			}
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			name = name[:i]
		}
		if strings.ContainsAny(name, " \t{}") {
			t.Fatalf("bad metric name %q in line %q", name, line)
		}
	}
}

func TestEndpointServesMetricsStatusPprof(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("melissa_endpoint_total", "hits").Add(7)
	r.SetStatus("study", func() any {
		return map[string]any{"groups_finished": 3}
	})
	e, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	body := httpGet(t, "http://"+e.Addr()+"/metrics")
	if !strings.Contains(body, "melissa_endpoint_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	var doc map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+e.Addr()+"/status")), &doc); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	study, ok := doc["study"].(map[string]any)
	if !ok || study["groups_finished"] != float64(3) {
		t.Fatalf("/status missing study section: %v", doc)
	}
	if _, ok := doc["process"].(map[string]any); !ok {
		t.Fatalf("/status missing process section: %v", doc)
	}

	if body := httpGet(t, "http://"+e.Addr()+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}

func TestEndpointConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("melissa_concurrent_total", "")
	h := r.NewHistogram("melissa_concurrent_seconds", "")
	e, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer hammering the metrics while scrapes run
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Observe(1e-6)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				httpGet(t, "http://"+e.Addr()+"/metrics")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("melissa_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("melissa_bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().NewHistogram("melissa_bench_since_seconds", "")
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}

func ExampleRegistry_WriteMetrics() {
	r := NewRegistry()
	r.NewCounter("melissa_example_total", "example events").Add(2)
	var b strings.Builder
	_ = r.WriteMetrics(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP melissa_example_total example events
	// # TYPE melissa_example_total counter
	// melissa_example_total 2
}
