// Package obs is the live telemetry plane: a low-overhead instrumentation
// core safe to call from the server's fold workers and the clients' send
// paths, plus the HTTP endpoint (http.go) that exposes it while a study is
// running.
//
// Every signal the framework used to report only as an end-of-run snapshot
// (Result.WireStats, CheckpointStats, quantile TupleCount, fold-queue
// backpressure, payload-pool balance) has a live mirror here; the launcher's
// heartbeat monitoring of Sec. 4.2 is the fault-tolerance half of the same
// concern, and the multi-study service on the ROADMAP reads this plane
// instead of quiescing the pipeline.
//
// Design constraints, in order:
//
//   - Hot-path updates are one or two uncontended atomic adds — no locks, no
//     maps, no interface dispatch, zero allocation. Metrics are package-level
//     (or struct-field) pointers resolved once at setup, never looked up per
//     event. Histogram observation buckets by the IEEE-754 exponent of the
//     value, so recording a latency costs an exponent extraction and two
//     atomic adds.
//   - Reading is wait-free for writers: scrapes load the same atomics and
//     never pause instrumented code.
//   - Creation is idempotent (get-or-create by name), so tests and
//     long-lived processes that construct several servers share one
//     process-wide registry without double-registration panics.
//
// The exposition format is the Prometheus text format (version 0.0.4); the
// /status endpoint serves JSON snapshots assembled from registered status
// sections (Registry.SetStatus).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and are dropped).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (occupancy, sizes, widths).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram buckets: one per IEEE-754 binary exponent from 2^histMinExp to
// 2^histMaxExp. In seconds that spans ~0.93 ns to 64 s — every latency this
// system produces — while a generic value histogram (batch sizes, bytes)
// gets power-of-two buckets over the same range shifted into positives.
const (
	histMinExp = -30
	histMaxExp = 6
	// histBuckets counts the finite buckets; observations above the top
	// bound land in the implicit +Inf bucket (count - sum of finite).
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a fixed-bucket distribution with power-of-two bounds.
// Observe costs an exponent extraction and three atomic adds; there is no
// per-observation allocation, lock or bound search.
type Histogram struct {
	count atomic.Int64
	// sum accumulates in nano-units (value × 1e9) so it stays a single
	// atomic add; the exposition divides back out.
	sumNano atomic.Int64
	buckets [histBuckets]atomic.Int64
	// overflow counts observations above the top finite bound.
	overflow atomic.Int64
}

// Observe records one value (typically seconds for latencies).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
	// The unbiased exponent of v selects the bucket: values in
	// [2^e, 2^(e+1)) land in the bucket with upper bound 2^(e+1).
	e := int(math.Float64bits(v)>>52&0x7ff) - 1023
	switch {
	case e < histMinExp: // includes v == 0 (biased exponent 0 → e = -1023)
		h.buckets[0].Add(1)
	case e > histMaxExp:
		h.overflow.Add(1)
	default:
		h.buckets[e-histMinExp].Add(1)
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner for
// latency sections: t0 := time.Now(); ...; h.ObserveSince(t0).
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return float64(h.sumNano.Load()) / 1e9 }

// kind discriminates the metric families of a registry.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
	funcKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, funcKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with its labeled series. Unlabeled metrics are
// the single series with an empty label value.
type family struct {
	name, help string
	label      string // label key ("" = unlabeled)
	kind       kind

	mu     sync.Mutex
	order  []string
	series map[string]any // *Counter | *Gauge | *Histogram | func() float64
}

// get returns the series for one label value, creating it on first use.
func (f *family) get(value string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[value]; ok {
		return s
	}
	var s any
	switch f.kind {
	case counterKind:
		s = &Counter{}
	case gaugeKind:
		s = &Gauge{}
	case histogramKind:
		s = &Histogram{}
	}
	f.series[value] = s
	f.order = append(f.order, value)
	return s
}

// Registry is a set of named metrics plus named status sections. The
// process-wide Default registry is what the package-level constructors and
// the HTTP endpoint use; tests may build their own.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string

	statusMu sync.Mutex
	status   map[string]func() any
	statOrd  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		status:   make(map[string]func() any),
	}
}

// Default is the process-wide registry.
var Default = NewRegistry()

// family gets or creates a metric family. Re-registering an existing name
// returns the existing family when the kind matches and panics otherwise —
// a name cannot silently change meaning mid-process.
func (r *Registry) family(name, help, label string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, label: label, kind: k,
		series: make(map[string]any)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// NewCounter gets or creates an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.family(name, help, "", counterKind).get("").(*Counter)
}

// NewGauge gets or creates an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.family(name, help, "", gaugeKind).get("").(*Gauge)
}

// NewHistogram gets or creates an unlabeled histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	return r.family(name, help, "", histogramKind).get("").(*Histogram)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the counter for one label value (created on first use).
func (v CounterVec) With(value string) *Counter { return v.f.get(value).(*Counter) }

// NewCounterVec gets or creates a counter family with one label key.
func (r *Registry) NewCounterVec(name, help, label string) CounterVec {
	return CounterVec{r.family(name, help, label, counterKind)}
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value (created on first use).
func (v GaugeVec) With(value string) *Gauge { return v.f.get(value).(*Gauge) }

// NewGaugeVec gets or creates a gauge family with one label key.
func (r *Registry) NewGaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.family(name, help, label, gaugeKind)}
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value (created on first use).
func (v HistogramVec) With(value string) *Histogram { return v.f.get(value).(*Histogram) }

// NewHistogramVec gets or creates a histogram family with one label key.
func (r *Registry) NewHistogramVec(name, help, label string) HistogramVec {
	return HistogramVec{r.family(name, help, label, histogramKind)}
}

// NewGaugeFunc registers (or replaces) a gauge whose value is computed at
// scrape time — the zero-hot-path-cost option for values that already exist
// as atomics elsewhere (pool balances, queue occupancy). Unlike the other
// constructors, a re-registration replaces the callback: a fresh component
// instance takes the name over from a stopped one.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "", funcKind)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[""]; !ok {
		f.order = append(f.order, "")
	}
	f.series[""] = fn
}

// Package-level constructors on the Default registry.

// NewCounter gets or creates an unlabeled counter in Default.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge gets or creates an unlabeled gauge in Default.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewHistogram gets or creates an unlabeled histogram in Default.
func NewHistogram(name, help string) *Histogram { return Default.NewHistogram(name, help) }

// NewCounterVec gets or creates a labeled counter family in Default.
func NewCounterVec(name, help, label string) CounterVec {
	return Default.NewCounterVec(name, help, label)
}

// NewGaugeVec gets or creates a labeled gauge family in Default.
func NewGaugeVec(name, help, label string) GaugeVec { return Default.NewGaugeVec(name, help, label) }

// NewHistogramVec gets or creates a labeled histogram family in Default.
func NewHistogramVec(name, help, label string) HistogramVec {
	return Default.NewHistogramVec(name, help, label)
}

// NewGaugeFunc registers a scrape-time gauge in Default.
func NewGaugeFunc(name, help string, fn func() float64) { Default.NewGaugeFunc(name, help, fn) }

// SetStatus registers (or replaces) one named section of the /status JSON
// document: fn is called at request time and its result JSON-marshaled under
// the section key. A fresh component instance (e.g. a restarted server)
// simply re-registers its section.
func (r *Registry) SetStatus(section string, fn func() any) {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	if _, ok := r.status[section]; !ok {
		r.statOrd = append(r.statOrd, section)
	}
	r.status[section] = fn
}

// SetStatus registers a /status section in Default.
func SetStatus(section string, fn func() any) { Default.SetStatus(section, fn) }

// statusSections snapshots the registered sections for the HTTP handler.
func (r *Registry) statusSections() (names []string, fns []func() any) {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	names = append(names, r.statOrd...)
	for _, n := range names {
		fns = append(fns, r.status[n])
	}
	return names, fns
}

// WriteMetrics writes the whole registry in the Prometheus text exposition
// format (sorted by metric name; label values in creation order).
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		values := append([]string(nil), f.order...)
		series := make([]any, len(values))
		for i, v := range values {
			series[i] = f.series[v]
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, s := range series {
			writeSeries(&b, f, values[i], s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelSuffix renders the {label="value"} part of a sample line, optionally
// with an extra le pair (histogram buckets).
func labelSuffix(f *family, value, le string) string {
	var pairs []string
	if f.label != "" {
		pairs = append(pairs, fmt.Sprintf("%s=%q", f.label, escapeLabel(value)))
	}
	if le != "" {
		pairs = append(pairs, fmt.Sprintf("le=%q", le))
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func writeSeries(b *strings.Builder, f *family, value string, s any) {
	switch m := s.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelSuffix(f, value, ""), m.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelSuffix(f, value, ""), formatFloat(m.Value()))
	case func() float64:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelSuffix(f, value, ""), formatFloat(m()))
	case *Histogram:
		var cum int64
		for i := range m.buckets {
			cum += m.buckets[i].Load()
			bound := math.Ldexp(1, histMinExp+i+1)
			fmt.Fprintf(b, "%s_bucket%s %d\n",
				f.name, labelSuffix(f, value, formatFloat(bound)), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelSuffix(f, value, "+Inf"), m.Count())
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelSuffix(f, value, ""), formatFloat(m.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelSuffix(f, value, ""), m.Count())
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
