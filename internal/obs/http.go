package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// Endpoint is a running telemetry HTTP server: /metrics (Prometheus text
// exposition), /status (JSON study snapshot), and /debug/pprof.
type Endpoint struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve starts the telemetry endpoint on addr (e.g. "127.0.0.1:9090";
// port 0 picks a free port — read it back with Addr). The listener is bound
// synchronously so a bad address fails here, then requests are served in a
// background goroutine until Close.
func Serve(addr string, reg *Registry) (*Endpoint, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteMetrics(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.statusDoc(reg))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	e.srv = &http.Server{Handler: mux}
	go func() { _ = e.srv.Serve(ln) }()
	return e, nil
}

// statusDoc assembles the /status JSON document: one built-in "process"
// section plus every registered section. Section callbacks run at request
// time, so the snapshot is as live as the atomics they read.
func (e *Endpoint) statusDoc(reg *Registry) map[string]any {
	doc := map[string]any{
		"process": processStatus(e.start),
	}
	names, fns := reg.statusSections()
	for i, name := range names {
		doc[name] = fns[i]()
	}
	return doc
}

func processStatus(start time.Time) map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"pid":            os.Getpid(),
		"uptime_seconds": time.Since(start).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"heap_bytes":     ms.HeapAlloc,
		"go_version":     runtime.Version(),
	}
}

// Addr returns the bound listen address (useful with port 0).
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Close stops the endpoint and releases the port.
func (e *Endpoint) Close() error { return e.srv.Close() }
