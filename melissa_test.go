package melissa

import (
	"math"
	"testing"

	"melissa/internal/sobol"
)

func ishigami(x []float64) float64 {
	return math.Sin(x[0]) + 7*math.Sin(x[1])*math.Sin(x[1]) +
		0.1*math.Pow(x[2], 4)*math.Sin(x[0])
}

func ishigamiParams() []Distribution {
	return []Distribution{
		Uniform{Low: -math.Pi, High: math.Pi},
		Uniform{Low: -math.Pi, High: math.Pi},
		Uniform{Low: -math.Pi, High: math.Pi},
	}
}

func TestEstimateSobolIshigami(t *testing.T) {
	res, err := EstimateSobol(ishigami, ishigamiParams(), 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	exact := sobol.Ishigami()
	for k := 0; k < 3; k++ {
		if d := math.Abs(res.First[k] - exact.ExactFirst[k]); d > 0.03 {
			t.Errorf("S%d = %v, want %v", k+1, res.First[k], exact.ExactFirst[k])
		}
		if d := math.Abs(res.Total[k] - exact.ExactTotal[k]); d > 0.03 {
			t.Errorf("ST%d = %v, want %v", k+1, res.Total[k], exact.ExactTotal[k])
		}
		if !res.FirstCI[k].Contains(res.First[k]) {
			t.Errorf("CI %v does not contain estimate %v", res.FirstCI[k], res.First[k])
		}
	}
	if res.Groups != 20000 {
		t.Errorf("groups = %d", res.Groups)
	}
}

func TestEstimateSobolValidation(t *testing.T) {
	if _, err := EstimateSobol(nil, ishigamiParams(), 10, 1); err == nil {
		t.Error("nil function accepted")
	}
	if _, err := EstimateSobol(ishigami, nil, 10, 1); err == nil {
		t.Error("no parameters accepted")
	}
	if _, err := EstimateSobol(ishigami, ishigamiParams(), 1, 1); err == nil {
		t.Error("single group accepted")
	}
	if _, err := EstimateSobolOpt(ishigami, ishigamiParams(), 10, 1,
		ScalarOptions{Estimator: "bogus"}); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestEstimateSobolAlternativeEstimators(t *testing.T) {
	for _, name := range []string{"jansen", "saltelli"} {
		res, err := EstimateSobolOpt(ishigami, ishigamiParams(), 8000, 3,
			ScalarOptions{Estimator: name})
		if err != nil {
			t.Fatal(err)
		}
		exact := sobol.Ishigami()
		for k := 0; k < 3; k++ {
			if d := math.Abs(res.First[k] - exact.ExactFirst[k]); d > 0.05 {
				t.Errorf("%s: S%d = %v, want %v", name, k+1, res.First[k], exact.ExactFirst[k])
			}
		}
		if res.FirstCI != nil {
			t.Errorf("%s should not claim confidence intervals", name)
		}
	}
}

// RunStudy on a scalar function (1 cell, 1 timestep) must agree with the
// in-process estimator: the whole distributed pipeline is exact.
func TestRunStudyScalarMatchesEstimate(t *testing.T) {
	const groups = 300
	cfg := StudyConfig{
		Parameters: ishigamiParams(),
		Groups:     groups,
		Seed:       11,
		Cells:      1,
		Timesteps:  1,
		Simulation: SimFunc(func(row []float64, emit func(int, []float64) bool) {
			emit(0, []float64{ishigami(row)})
		}),
		ServerProcs: 1,
	}
	res, stats, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GroupsFinished != groups {
		t.Fatalf("finished %d", stats.GroupsFinished)
	}
	direct, err := EstimateSobol(ishigami, ishigamiParams(), groups, 11)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if d := math.Abs(res.First(0, k)[0] - direct.First[k]); d > 1e-9 {
			t.Errorf("S%d: distributed %v vs direct %v", k+1, res.First(0, k)[0], direct.First[k])
		}
		if d := math.Abs(res.Total(0, k)[0] - direct.Total[k]); d > 1e-9 {
			t.Errorf("ST%d: distributed %v vs direct %v", k+1, res.Total(0, k)[0], direct.Total[k])
		}
	}
	if stats.DataAvoidedBytes != int64(groups)*5*8 {
		t.Errorf("data avoided %d bytes", stats.DataAvoidedBytes)
	}
}

func TestRunStudyValidation(t *testing.T) {
	good := StudyConfig{
		Parameters: ishigamiParams(), Groups: 2, Cells: 1, Timesteps: 1,
		Simulation: SimFunc(func([]float64, func(int, []float64) bool) {}),
	}
	for _, mutate := range []func(*StudyConfig){
		func(c *StudyConfig) { c.Parameters = nil },
		func(c *StudyConfig) { c.Groups = 0 },
		func(c *StudyConfig) { c.Simulation = nil },
		func(c *StudyConfig) { c.Cells = 0 },
		func(c *StudyConfig) { c.Timesteps = 0 },
	} {
		cfg := good
		mutate(&cfg)
		if _, _, err := RunStudy(cfg); err == nil {
			t.Error("invalid config accepted")
		}
	}
}

func TestRunStudyMultiProcMultiRank(t *testing.T) {
	// Field study across 3 server processes and 4-rank simulations with a
	// spatially varying model: the field indices must vary across cells.
	const cells, timesteps, groups = 30, 2, 200
	cfg := StudyConfig{
		Parameters: []Distribution{Normal{Mean: 0, Std: 1}, Normal{Mean: 0, Std: 1}},
		Groups:     groups,
		Seed:       5,
		Cells:      cells,
		Timesteps:  timesteps,
		Simulation: SimFunc(func(row []float64, emit func(int, []float64) bool) {
			f := make([]float64, cells)
			for s := 0; s < timesteps; s++ {
				for c := range f {
					w := float64(c) / float64(cells-1) // x1-weight grows with c
					f[c] = w*row[0] + (1-w)*row[1]
				}
				if !emit(s, f) {
					return
				}
			}
		}),
		ServerProcs: 3,
		SimRanks:    4,
		MinMax:      true,
	}
	res, stats, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GroupsFinished != groups {
		t.Fatalf("finished %d", stats.GroupsFinished)
	}
	s0 := res.First(0, 0)
	// Cell 0 is pure x2, the last cell pure x1 (Martinez correlation noise
	// at n=200 is ~0.07, so allow a few sigmas around the exact 0 and 1).
	if s0[0] > 0.3 || s0[cells-1] < 0.8 {
		t.Fatalf("ubiquitous S1 gradient wrong: S1(0)=%v S1(last)=%v", s0[0], s0[cells-1])
	}
	if s0[cells-1] <= s0[0] {
		t.Fatalf("S1 not increasing across cells: %v .. %v", s0[0], s0[cells-1])
	}
	inter := res.Interaction(0)
	for c := 1; c < cells-1; c++ {
		if math.Abs(inter[c]) > 0.2 {
			t.Fatalf("additive model shows interaction %v at cell %d", inter[c], c)
		}
	}
	if res.MaxCIWidth() <= 0 || math.IsInf(res.MaxCIWidth(), 1) {
		t.Fatalf("CI width %v", res.MaxCIWidth())
	}
	if stats.ServerMemory <= 0 || stats.MessagesFolded <= 0 {
		t.Fatalf("accounting empty: %+v", stats)
	}
}

func TestRunStudyWireCodec(t *testing.T) {
	// Same gradient study through the negotiated compressed framing: the
	// statistics must come out just as correct, and the wire telemetry must
	// show the field traffic cost less than its raw framing.
	const cells, timesteps, groups = 30, 2, 200
	cfg := StudyConfig{
		Parameters: []Distribution{Normal{Mean: 0, Std: 1}, Normal{Mean: 0, Std: 1}},
		Groups:     groups,
		Seed:       5,
		Cells:      cells,
		Timesteps:  timesteps,
		Simulation: SimFunc(func(row []float64, emit func(int, []float64) bool) {
			f := make([]float64, cells)
			for s := 0; s < timesteps; s++ {
				for c := range f {
					w := float64(c) / float64(cells-1)
					f[c] = w*row[0] + (1-w)*row[1]
				}
				if !emit(s, f) {
					return
				}
			}
		}),
		ServerProcs: 3,
		SimRanks:    4,
		BatchSteps:  2,
		WireCodec:   true,
	}
	res, stats, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GroupsFinished != groups {
		t.Fatalf("finished %d", stats.GroupsFinished)
	}
	s0 := res.First(0, 0)
	if s0[0] > 0.3 || s0[cells-1] < 0.8 {
		t.Fatalf("ubiquitous S1 gradient wrong: S1(0)=%v S1(last)=%v", s0[0], s0[cells-1])
	}
	ws := res.WireStats()
	if ws.Messages == 0 || ws.WireBytes >= ws.RawBytes || ws.Ratio() <= 1 {
		t.Fatalf("codec study shows no wire savings: %+v", ws)
	}
	if ws.Saved() != ws.RawBytes-ws.WireBytes {
		t.Fatalf("inconsistent telemetry: %+v", ws)
	}
}

func TestRunStudyQuantiles(t *testing.T) {
	// Per-cell output is w·x1 + (1−w)·x2 with x1, x2 ~ N(0,1): every cell's
	// distribution is a centered Gaussian, so the ubiquitous median must be
	// near 0 and the quantile probes must be ordered.
	const cells, timesteps, groups = 12, 2, 400
	cfg := StudyConfig{
		Parameters: []Distribution{Normal{Mean: 0, Std: 1}, Normal{Mean: 0, Std: 1}},
		Groups:     groups,
		Seed:       9,
		Cells:      cells,
		Timesteps:  timesteps,
		Simulation: SimFunc(func(row []float64, emit func(int, []float64) bool) {
			f := make([]float64, cells)
			for s := 0; s < timesteps; s++ {
				for c := range f {
					w := float64(c) / float64(cells-1)
					f[c] = w*row[0] + (1-w)*row[1]
				}
				if !emit(s, f) {
					return
				}
			}
		}),
		ServerProcs: 2,
		FoldWorkers: 3,
		Quantiles:   []float64{0.05, 0.5, 0.95},
	}
	res, _, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if probes := res.QuantileProbes(); len(probes) != 3 || probes[1] != 0.5 {
		t.Fatalf("probes not surfaced: %v", probes)
	}
	lo, med, hi := res.Quantile(0, 0.05), res.Quantile(0, 0.5), res.Quantile(0, 0.95)
	for c := 0; c < cells; c++ {
		if !(lo[c] < med[c] && med[c] < hi[c]) {
			t.Fatalf("cell %d: quantiles not ordered: %v %v %v", c, lo[c], med[c], hi[c])
		}
		// 800 pooled N(0,σ≤1) samples: the 1%-rank-error median stays well
		// inside ±0.2, and the 5%/95% tails land around ±1.6σ.
		if math.Abs(med[c]) > 0.2 {
			t.Fatalf("cell %d: median %v too far from 0", c, med[c])
		}
		if lo[c] > -0.5 || hi[c] < 0.5 {
			t.Fatalf("cell %d: tails too tight: %v %v", c, lo[c], hi[c])
		}
	}
	// Quantiles off: the field reads as zeros.
	cfg.Quantiles = nil
	cfg.Groups = 20
	plain, _, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.QuantileProbes() != nil {
		t.Fatal("probes present without the option")
	}
	for _, v := range plain.Quantile(0, 0.5) {
		if v != 0 {
			t.Fatal("disabled quantile field not zero")
		}
	}
}

func TestRunStudyConvergenceStop(t *testing.T) {
	cfg := StudyConfig{
		Parameters: ishigamiParams(),
		Groups:     5000,
		Seed:       13,
		Cells:      1,
		Timesteps:  1,
		Simulation: SimFunc(func(row []float64, emit func(int, []float64) bool) {
			emit(0, []float64{ishigami(row)})
		}),
		ConvergenceTarget: 0.8,
	}
	res, stats, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatal("study did not converge early")
	}
	if n := res.GroupsFolded(0); n >= 5000 || n < 4 {
		t.Fatalf("folded %d groups", n)
	}
}

func TestTubeBundleStudyConstruction(t *testing.T) {
	study, grid, err := TubeBundleStudy(48, 16, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if study.Cells != 48*16 || study.Timesteps != 100 || len(study.Parameters) != 6 {
		t.Fatalf("study shape: %+v", study)
	}
	if grid.Nx != 48 || grid.Ny != 16 {
		t.Fatalf("grid %+v", grid)
	}
	solid := 0
	for i := 0; i < study.Cells; i++ {
		if grid.Solid(i) {
			solid++
		}
	}
	if solid == 0 {
		t.Fatal("no tubes on the grid")
	}
	names := TubeBundleParamNames()
	if len(names) != 6 || names[0] != "conc-upper" {
		t.Fatalf("names %v", names)
	}
	if k, err := TubeBundleParamIndex("dur-lower"); err != nil || k != 5 {
		t.Fatalf("index: %d %v", k, err)
	}
	if _, err := TubeBundleParamIndex("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, _, err := TubeBundleStudy(2, 2, 1, 1); err == nil {
		t.Fatal("tiny grid accepted")
	}
}
