// goldengen writes the golden v1/v2 checkpoint fixtures for
// internal/core/golden_test.go. The committed fixtures in
// internal/core/testdata/ were generated against the seed (pre-interleave)
// parallel-array kernel, so they pin the historical byte stream; because
// the interleaved kernel is bitwise identical and its Encode transposes to
// the same dense layout, re-running this tool reproduces the same bytes
// (TestGoldenFixtureFreshEncode asserts exactly that). Regenerate only if
// the fixture shape itself needs to change, and never to "fix" a byte
// mismatch — a mismatch means the kernel broke compatibility.
package main

import (
	"log"

	"melissa/internal/checkpoint"
	"melissa/internal/core"
	"melissa/internal/enc"
)

// lcg is a tiny deterministic generator so fixture bytes never depend on
// math/rand's algorithm (which may change across Go versions).
type lcg struct{ s uint64 }

func (l *lcg) next() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(int64(l.s>>11)) / float64(1<<52)
}

func main() {
	const cells, steps, p, groups = 13, 3, 4, 9
	th := 0.25
	build := func(opts core.Options) *core.Accumulator {
		a := core.NewAccumulator(cells, steps, p, opts)
		g := &lcg{s: 2017}
		yA := make([]float64, cells)
		yB := make([]float64, cells)
		yC := make([][]float64, p)
		for k := range yC {
			yC[k] = make([]float64, cells)
		}
		for t := 0; t < steps; t++ {
			for n := 0; n < groups; n++ {
				for i := 0; i < cells; i++ {
					yA[i] = g.next()
					yB[i] = g.next()
					for k := 0; k < p; k++ {
						yC[k][i] = g.next()
					}
				}
				a.UpdateGroup(t, yA, yB, yC)
			}
		}
		return a
	}

	v1opts := core.Options{MinMax: true, Threshold: &th, HigherMoments: true}
	v2opts := v1opts
	v2opts.Quantiles = []float64{0.1, 0.5, 0.9}
	v2opts.QuantileEps = 0.05

	a1 := build(v1opts)
	if err := checkpoint.WriteVersioned("internal/core/testdata/accumulator_v1.ckpt", checkpoint.V1,
		func(w *enc.Writer) { a1.EncodeVersion(w, core.LayoutV1) }); err != nil {
		log.Fatal(err)
	}
	a2 := build(v2opts)
	if err := checkpoint.WriteVersioned("internal/core/testdata/accumulator_v2.ckpt", checkpoint.V2,
		func(w *enc.Writer) { a2.EncodeVersion(w, core.LayoutV2) }); err != nil {
		log.Fatal(err)
	}
	log.Printf("fixtures written: S0(0,0,0)=%v total=%v q50=%v",
		a2.FirstAt(0, 0, 0), a2.TotalAt(0, 0, 0), a2.QuantileField(0, 0.5, nil)[0])
}
