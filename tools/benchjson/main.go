// benchjson converts `go test -bench` text output into machine-readable
// JSON, so the repo's performance trajectory can be recorded per PR (see
// BENCH_PR3.json) and diffed mechanically instead of eyeballed.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | go run ./tools/benchjson
//	go run ./tools/benchjson before=/tmp/before.txt after=/tmp/after.txt
//
// With no arguments it reads one benchmark run from stdin and emits a JSON
// object {context, benchmarks}. With label=path arguments it reads each file
// and emits {label: {context, benchmarks}, ...}, which is the layout of the
// BENCH_PRn.json files.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Repeated -count runs of the same
// benchmark appear as separate entries, preserving the spread.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom ReportMetric values, e.g. "fullscale-GB".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is the output of one benchmark invocation: the goos/goarch/pkg/cpu
// context lines plus every result line, in order.
type Run struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func parse(r io.Reader) (Run, error) {
	run := Run{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if rest, ok := strings.CutPrefix(line, key+": "); ok {
				// Keep the first value per key: one aggregated file may
				// concatenate several packages.
				if _, seen := run.Context[key]; !seen {
					run.Context[key] = rest
				}
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... \t--- FAIL"
		}
		b := Benchmark{Name: fields[0], Runs: runs}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
				ok = true
			case "MB/s":
				b.MBPerSec = val
			case "B/op":
				b.BytesPerOp = int64(val)
			case "allocs/op":
				b.AllocsPerOp = int64(val)
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = val
			}
		}
		if ok {
			run.Benchmarks = append(run.Benchmarks, b)
		}
	}
	return run, sc.Err()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if len(os.Args) == 1 {
		run, err := parse(os.Stdin)
		if err != nil {
			fail(err)
		}
		if len(run.Benchmarks) == 0 {
			fail(fmt.Errorf("no benchmark lines found on stdin"))
		}
		if err := out.Encode(run); err != nil {
			fail(err)
		}
		return
	}
	labeled := make(map[string]Run, len(os.Args)-1)
	order := make([]string, 0, len(os.Args)-1)
	for _, arg := range os.Args[1:] {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			fail(fmt.Errorf("argument %q is not label=path", arg))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		run, err := parse(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if len(run.Benchmarks) == 0 {
			fail(fmt.Errorf("%s: no benchmark lines found", path))
		}
		labeled[label] = run
		order = append(order, label)
	}
	_ = order // JSON objects are key-sorted by encoding/json; labels stay self-describing
	if err := out.Encode(labeled); err != nil {
		fail(err)
	}
}
