// benchjson converts `go test -bench` text output into machine-readable
// JSON, so the repo's performance trajectory can be recorded per PR (see
// BENCH_PR3.json) and diffed mechanically instead of eyeballed.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | go run ./tools/benchjson
//	go run ./tools/benchjson before=/tmp/before.txt after=/tmp/after.txt
//	go test -bench Snapshot ./... | go run ./tools/benchjson -max 'quantiles.*=5e6'
//
// With no arguments it reads one benchmark run from stdin and emits a JSON
// object {context, benchmarks}. With label=path arguments it reads each file
// and emits {label: {context, benchmarks}, ...}, which is the layout of the
// BENCH_PRn.json files.
//
// Each run's context block records the toolchain lines go test prints
// (goos/goarch/pkg/cpu) plus host facts that make BENCH files comparable
// across machines: host_num_cpu (runtime.NumCPU), host_gomaxprocs, and
// cpu_list — the -cpu parallelism levels recovered from the -N benchmark
// name suffixes — so a 1-core CI number is never mistaken for a multi-core
// one.
//
// The repeatable -max regex=ns flag turns the converter into a smoke gate:
// every benchmark whose name matches the regex must come in at or under the
// ns/op ceiling, and at least one benchmark must match (so a renamed
// benchmark cannot silently pass). Violations report on stderr and exit
// non-zero after the JSON is emitted.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Repeated -count runs of the same
// benchmark appear as separate entries, preserving the spread.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom ReportMetric values, e.g. "stall-ns/op".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is the output of one benchmark invocation: the goos/goarch/pkg/cpu
// context lines, the host facts, plus every result line, in order.
type Run struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// cpuLevels recovers the -cpu parallelism levels from the benchmark names:
// go test appends "-N" for GOMAXPROCS=N runs and nothing for N=1. A trailing
// "-N" is ambiguous with sub-benchmark names like "workers-8", so a suffix
// only counts as a cpu level when the suffix-stripped name also appears in
// the run (its GOMAXPROCS=1 sibling) — which it always does for the -cpu
// 1,... invocations the BENCH records and CI use.
func cpuLevels(names map[string]bool) map[int]bool {
	levels := map[int]bool{}
	for name := range names {
		if i := strings.LastIndexByte(name, '-'); i >= 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 1 && names[name[:i]] {
				levels[n] = true
				continue
			}
		}
		levels[1] = true
	}
	return levels
}

func parse(r io.Reader) (Run, error) {
	run := Run{Context: map[string]string{}}
	names := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if rest, ok := strings.CutPrefix(line, key+": "); ok {
				// Keep the first value per key: one aggregated file may
				// concatenate several packages.
				if _, seen := run.Context[key]; !seen {
					run.Context[key] = rest
				}
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... \t--- FAIL"
		}
		b := Benchmark{Name: fields[0], Runs: runs}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
				ok = true
			case "MB/s":
				b.MBPerSec = val
			case "B/op":
				b.BytesPerOp = int64(val)
			case "allocs/op":
				b.AllocsPerOp = int64(val)
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = val
			}
		}
		if ok {
			names[b.Name] = true
			run.Benchmarks = append(run.Benchmarks, b)
		}
	}
	if cpus := cpuLevels(names); len(cpus) > 0 {
		list := make([]int, 0, len(cpus))
		for n := range cpus {
			list = append(list, n)
		}
		sort.Ints(list)
		parts := make([]string, len(list))
		for i, n := range list {
			parts[i] = strconv.Itoa(n)
		}
		run.Context["cpu_list"] = strings.Join(parts, ",")
	}
	run.Context["host_num_cpu"] = strconv.Itoa(runtime.NumCPU())
	run.Context["host_gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	return run, sc.Err()
}

// ceiling is one -max assertion: benchmarks matching re must run at or
// under ns nanoseconds per op.
type ceiling struct {
	re   *regexp.Regexp
	ns   float64
	spec string
}

type ceilingFlags []ceiling

func (c *ceilingFlags) String() string { return fmt.Sprint(len(*c), " ceilings") }

func (c *ceilingFlags) Set(spec string) error {
	pat, nsText, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("-max %q is not regex=ns", spec)
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return err
	}
	ns, err := strconv.ParseFloat(nsText, 64)
	if err != nil {
		return fmt.Errorf("-max %q: %v", spec, err)
	}
	*c = append(*c, ceiling{re: re, ns: ns, spec: spec})
	return nil
}

// check applies one ceiling to every benchmark in every run; a ceiling that
// matches nothing is itself a failure.
func (c ceiling) check(runs []Run) []string {
	var bad []string
	matched := false
	for _, run := range runs {
		for _, b := range run.Benchmarks {
			if !c.re.MatchString(b.Name) {
				continue
			}
			matched = true
			if b.NsPerOp > c.ns {
				bad = append(bad, fmt.Sprintf("%s: %.0f ns/op exceeds ceiling %.0f (-max %s)",
					b.Name, b.NsPerOp, c.ns, c.spec))
			}
		}
	}
	if !matched {
		bad = append(bad, fmt.Sprintf("no benchmark matched -max %s", c.spec))
	}
	return bad
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	var ceilings ceilingFlags
	flag.Var(&ceilings, "max", "regex=ns ceiling on ns/op for matching benchmarks (repeatable)")
	flag.Parse()
	args := flag.Args()

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	var runs []Run
	if len(args) == 0 {
		run, err := parse(os.Stdin)
		if err != nil {
			fail(err)
		}
		if len(run.Benchmarks) == 0 {
			fail(fmt.Errorf("no benchmark lines found on stdin"))
		}
		if err := out.Encode(run); err != nil {
			fail(err)
		}
		runs = append(runs, run)
	} else {
		labeled := make(map[string]Run, len(args))
		for _, arg := range args {
			label, path, ok := strings.Cut(arg, "=")
			if !ok {
				fail(fmt.Errorf("argument %q is not label=path", arg))
			}
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			run, err := parse(f)
			f.Close()
			if err != nil {
				fail(err)
			}
			if len(run.Benchmarks) == 0 {
				fail(fmt.Errorf("%s: no benchmark lines found", path))
			}
			labeled[label] = run
			runs = append(runs, run)
		}
		if err := out.Encode(labeled); err != nil {
			fail(err)
		}
	}

	failed := false
	for _, c := range ceilings {
		for _, msg := range c.check(runs) {
			fmt.Fprintln(os.Stderr, "benchjson:", msg)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
