// Elastic demonstrates Melissa's elasticity over real TCP sockets: a
// parallel server comes up first, then simulation groups arrive in waves —
// dynamically connecting, streaming their timesteps and disconnecting —
// while the server keeps folding whatever arrives, in any order. Late
// groups can even be decided on *after* the early results are in, which is
// the basis of the paper's adaptive-sampling outlook (Sec. 7).
//
// Run with:
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"melissa/internal/client"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/transport"
)

const (
	cells     = 128
	timesteps = 8
	p         = 3
)

func sim(row []float64, emit func(step int, field []float64) bool) {
	field := make([]float64, cells)
	for t := 0; t < timesteps; t++ {
		for c := range field {
			x := float64(c) / cells
			field[c] = row[0]*math.Sin(2*math.Pi*x) + row[1]*x + row[2]*row[2]*float64(t)*0.1
		}
		if !emit(t, field) {
			return
		}
	}
}

func main() {
	net := transport.NewTCPNetwork(transport.Options{})

	srv, err := server.New(server.Config{
		Procs:     3,
		Cells:     cells,
		Timesteps: timesteps,
		P:         p,
		Network:   net,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	fmt.Printf("parallel server: 3 processes listening on TCP\n")
	for rank, addr := range srv.Addrs() {
		fmt.Printf("  process %d: %s\n", rank, addr)
	}

	design := sampling.NewDesign([]sampling.Distribution{
		sampling.Uniform{Low: -1, High: 1},
		sampling.Uniform{Low: 0, High: 2},
		sampling.Normal{Mean: 0, Std: 1},
	}, 64, 123)

	// Three waves of groups, each wave arriving while the server already
	// runs — no global startup barrier anywhere.
	waves := [][2]int{{0, 16}, {16, 40}, {40, 64}}
	totalStart := time.Now()
	for w, span := range waves {
		fmt.Printf("\nwave %d: groups %d..%d connect dynamically\n", w+1, span[0], span[1]-1)
		var wg sync.WaitGroup
		for g := span[0]; g < span[1]; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				err := client.RunGroup(net, srv.MainAddr(), client.RunConfig{
					GroupID:  g,
					SimRanks: 2,
					Rows:     design.GroupRows(g),
					Sim:      client.SimFunc(sim),
				})
				if err != nil {
					log.Printf("group %d: %v", g, err)
				}
			}(g)
		}
		wg.Wait()
		// Wait until the server has folded this wave before reporting.
		want := int64(span[1] * timesteps * 3)
		for srv.TotalFolds() < want {
			time.Sleep(5 * time.Millisecond)
		}
		fmt.Printf("  server folded %d groups so far; S1(cell 32, t0) = %.3f\n",
			span[1], probeFirst(srv))
	}
	srv.Stop(false)

	res := srv.Result()
	fmt.Printf("\nstudy complete in %v: %d messages over TCP, zero intermediate files\n",
		time.Since(totalStart).Round(time.Millisecond), res.Messages())
	fmt.Printf("final ubiquitous indices at t=0, cell 32:\n")
	for k := 0; k < p; k++ {
		fmt.Printf("  S%d = %6.3f   ST%d = %6.3f\n",
			k+1, res.FirstField(0, k)[32], k+1, res.TotalField(0, k)[32])
	}
	fmt.Printf("widest 95%% CI: %.3f (tighten it by sending more waves)\n", res.MaxCIWidth(0.95))
}

// probeFirst peeks at a running index estimate. Reading a live server is
// only safe through its public result after a stop; here the waves are
// drained, so the accumulators are quiescent.
func probeFirst(srv *server.Server) float64 {
	return srv.Procs()[0].Accumulator().FirstAt(0, 0, 32)
}
