// Convergence demonstrates the Sec. 3.4 convergence control: confidence
// intervals shrink as 1/sqrt(n) while groups stream in, and the study stops
// itself once every index is known to the requested precision — cancelling
// the simulations that turned out to be unnecessary (the paper's loopback
// control).
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"math"

	"melissa"
	"melissa/internal/harness"
	"melissa/internal/sampling"
	"melissa/internal/sobol"
)

func main() {
	fn := sobol.Ishigami()

	// Part 1: watch the Eq. 8 interval around S1 tighten as groups stream.
	fmt.Println("== confidence-interval decay on Ishigami S1 (exact 0.3139) ==")
	est := sobol.NewMartinez(fn.P())
	var xs, ys []float64
	checkpoints := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	next := 0
	sobolStream(fn, 4096, func(n int, m *sobol.Martinez) {
		if next < len(checkpoints) && n == checkpoints[next] {
			iv := m.FirstCI(0, 0.95)
			fmt.Printf("  n=%5d   S1=%7.4f   CI [%7.4f, %7.4f]   width %.4f\n",
				n, m.First(0), iv.Low, iv.High, iv.Width())
			xs = append(xs, math.Log2(float64(n)))
			ys = append(ys, iv.Width())
			next++
		}
	}, est)
	fmt.Println("\n  CI width vs log2(n):", harness.Sparkline(ys))
	fmt.Println("  (halves every 4x groups — the 1/sqrt(n) law of Eq. 8)")
	_ = xs

	// Part 2: let the full framework stop itself at a target precision.
	fmt.Println("\n== loopback control: stop when every CI is narrower than 0.35 ==")
	study := melissa.StudyConfig{
		Parameters: fn.Params,
		Groups:     100000, // far more than needed; convergence cancels the rest
		Seed:       99,
		Cells:      1,
		Timesteps:  1,
		Simulation: melissa.SimFunc(func(row []float64, emit func(int, []float64) bool) {
			emit(0, []float64{fn.Eval(row)})
		}),
		ConvergenceTarget: 0.35,
	}
	res, stats, err := melissa.RunStudy(study)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  submitted budget: %d groups\n", study.Groups)
	fmt.Printf("  actually run:     %d groups (converged=%v)\n", res.GroupsFolded(0), stats.Converged)
	fmt.Printf("  final widest CI:  %.3f ≤ 0.35\n", res.MaxCIWidth())
	fmt.Printf("  S = [%.3f %.3f %.3f]\n",
		res.First(0, 0)[0], res.First(0, 1)[0], res.First(0, 2)[0])
	fmt.Println("  pending group jobs were cancelled — compute saved by iterative CIs")
}

// sobolStream folds groups one at a time, invoking probe after each.
func sobolStream(fn *sobol.Function, n int, probe func(int, *sobol.Martinez), est *sobol.Martinez) {
	design := sampling.NewDesign(fn.Params, n, 4242)
	yC := make([]float64, fn.P())
	for i := 0; i < n; i++ {
		yA := fn.Eval(design.RowA(i))
		yB := fn.Eval(design.RowB(i))
		for k := 0; k < fn.P(); k++ {
			yC[k] = fn.Eval(design.RowC(i, k))
		}
		est.Update(yA, yB, yC)
		probe(i+1, est)
	}
}
