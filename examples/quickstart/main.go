// Quickstart: iterative Sobol' indices for the Ishigami function, first with
// the bare one-pass estimator (EstimateSobol), then through the complete
// Melissa framework — launcher, parallel server, simulation groups and
// two-stage transfers — all in one process (RunStudy).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"time"

	"melissa"
)

func ishigami(x []float64) float64 {
	return math.Sin(x[0]) + 7*math.Sin(x[1])*math.Sin(x[1]) +
		0.1*math.Pow(x[2], 4)*math.Sin(x[0])
}

func main() {
	params := []melissa.Distribution{
		melissa.Uniform{Low: -math.Pi, High: math.Pi},
		melissa.Uniform{Low: -math.Pi, High: math.Pi},
		melissa.Uniform{Low: -math.Pi, High: math.Pi},
	}

	// Part 1 — the algorithmic core: one-pass pick-freeze estimation.
	// Memory stays O(p) no matter how many groups stream through.
	fmt.Println("== Iterative Martinez estimator on Ishigami (n = 10000 groups) ==")
	res, err := melissa.EstimateSobol(ishigami, params, 10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	exactFirst := []float64{0.3139, 0.4424, 0}
	exactTotal := []float64{0.5576, 0.4424, 0.2437}
	for k := 0; k < 3; k++ {
		fmt.Printf("  S%d  = %6.4f  (exact %6.4f)   95%% CI [%.4f, %.4f]\n",
			k+1, res.First[k], exactFirst[k], res.FirstCI[k].Low, res.FirstCI[k].High)
	}
	for k := 0; k < 3; k++ {
		fmt.Printf("  ST%d = %6.4f  (exact %6.4f)   95%% CI [%.4f, %.4f]\n",
			k+1, res.Total[k], exactTotal[k], res.TotalCI[k].Low, res.TotalCI[k].High)
	}

	// Part 2 — the same estimation through the full in-transit framework:
	// every group is an independent "job" whose p+2 = 5 simulations stream
	// their output to a 2-process parallel server; nothing touches disk.
	fmt.Println("\n== Full framework (launcher + parallel server + groups) ==")
	study := melissa.StudyConfig{
		Parameters: params,
		Groups:     2000,
		Seed:       42,
		Cells:      1,
		Timesteps:  1,
		Simulation: melissa.SimFunc(func(row []float64, emit func(int, []float64) bool) {
			emit(0, []float64{ishigami(row)})
		}),
		ServerProcs: 2,
	}
	// Live telemetry: every binary and RunStudy can expose /metrics
	// (Prometheus), /status (JSON snapshot) and /debug/pprof while the study
	// runs. Here we poll /status from a goroutine to watch progress.
	ep, err := melissa.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	statusURL := "http://" + ep.Addr() + "/status"
	stopPoll := make(chan struct{})
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopPoll:
				return
			case <-tick.C:
			}
			resp, err := http.Get(statusURL)
			if err != nil {
				continue
			}
			var doc struct {
				Study struct {
					Running  int64 `json:"groups_running"`
					Finished int64 `json:"groups_finished"`
					Total    int64 `json:"groups_total"`
				} `json:"study"`
			}
			json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if doc.Study.Total > 0 {
				fmt.Printf("  [live /status] %d/%d groups finished, %d running\n",
					doc.Study.Finished, doc.Study.Total, doc.Study.Running)
			}
		}
	}()

	field, stats, err := melissa.RunStudy(study)
	close(stopPoll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  groups finished: %d   wall clock: %v   messages: %d\n",
		stats.GroupsFinished, stats.WallClock.Round(1e6), stats.MessagesFolded)
	fmt.Printf("  data streamed in transit (never written): %.1f MB\n",
		float64(stats.DataAvoidedBytes)/1e6)
	for k := 0; k < 3; k++ {
		fmt.Printf("  S%d = %6.4f   ST%d = %6.4f\n",
			k+1, field.First(0, k)[0], k+1, field.Total(0, k)[0])
	}
	fmt.Printf("  widest 95%% confidence interval: %.4f\n", field.MaxCIWidth())
}
