// Tubebundle reproduces the paper's use case (Sec. 5.2, Fig. 7/8): a global
// sensitivity study of dye transport through a tube bundle with six
// uncertain injection parameters, run through the complete in-transit
// framework. It prints ASCII renditions of the six first-order Sobol' maps
// and the variance map at timestep 80, and saves PGM images plus CSV grids
// under ./out/tubebundle/.
//
// Run with:
//
//	go run ./examples/tubebundle [-nx 96] [-ny 32] [-groups 128]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"melissa"
	"melissa/internal/harness"
)

func main() {
	nx := flag.Int("nx", 96, "grid cells in x")
	ny := flag.Int("ny", 32, "grid cells in y")
	groups := flag.Int("groups", 128, "simulation groups (each runs 8 simulations)")
	procs := flag.Int("server-procs", 4, "parallel server processes")
	out := flag.String("out", "out/tubebundle", "output directory")
	flag.Parse()

	study, grid, err := melissa.TubeBundleStudy(*nx, *ny, *groups, 2017)
	if err != nil {
		log.Fatal(err)
	}
	study.ServerProcs = *procs
	study.SimRanks = 4
	study.MinMax = true

	fmt.Printf("tube-bundle study: %dx%d cells, %d timesteps, %d groups x 8 simulations, %d server processes\n",
		*nx, *ny, study.Timesteps, *groups, *procs)
	start := time.Now()
	res, stats, err := melissa.RunStudy(study)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %v: %d groups, %d messages folded, %.1f GB kept off disk\n\n",
		time.Since(start).Round(time.Millisecond), stats.GroupsFinished,
		stats.MessagesFolded, float64(stats.DataAvoidedBytes)/1e9)

	const step = 79 // the paper interprets timestep 80
	names := melissa.TubeBundleParamNames()

	// Mask tube interiors so the bundle is visible in the maps, as the mesh
	// outline is in the paper's figures.
	mask := func(field []float64) []float64 {
		masked := append([]float64(nil), field...)
		for i := range masked {
			if grid.Solid(i) {
				masked[i] = 0
			}
		}
		return masked
	}

	for k, name := range names {
		field := mask(res.First(step, k))
		fmt.Printf("--- Fig. 7(%c): first-order Sobol' map, %s (timestep %d) ---\n", 'a'+k, name, step+1)
		fmt.Print(harness.Heatmap(field, *nx, *ny, 0, 1))
		path := filepath.Join(*out, fmt.Sprintf("fig7_%s.pgm", name))
		if err := harness.WritePGM(path, field, *nx, *ny, 0, 1); err != nil {
			log.Fatal(err)
		}
	}

	variance := mask(res.Variance(step))
	fmt.Printf("--- Fig. 8: output variance map (timestep %d) ---\n", step+1)
	fmt.Print(harness.Heatmap(variance, *nx, *ny, 0, 0))
	if err := harness.WritePGM(filepath.Join(*out, "fig8_variance.pgm"), variance, *nx, *ny, 0, 0); err != nil {
		log.Fatal(err)
	}

	inter := res.Interaction(step)
	var meanInter float64
	n := 0
	for i, v := range inter {
		if variance[i] > 1e-3 {
			meanInter += v
			n++
		}
	}
	if n > 0 {
		meanInter /= float64(n)
	}
	fmt.Printf("\nSec. 5.5 diagnostics at timestep %d:\n", step+1)
	fmt.Printf("  mean interaction share 1-sum(S_k) over active cells: %+.3f (paper: very small)\n", meanInter)
	fmt.Printf("  widest 95%% CI across all ubiquitous indices:        %.3f\n", res.MaxCIWidth())

	// Save every index field as CSV for external plotting.
	rows := make([][]float64, study.Cells)
	for i := range rows {
		row := []float64{float64(i % *nx), float64(i / *nx)}
		for k := range names {
			row = append(row, res.First(step, k)[i])
		}
		row = append(row, res.Variance(step)[i])
		rows[i] = row
	}
	header := append([]string{"ix", "iy"}, names...)
	header = append(header, "variance")
	csvPath := filepath.Join(*out, "fig7_fields.csv")
	if err := harness.WriteCSV(csvPath, header, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaps saved under %s (PGM + CSV)\n", *out)
}
