// Faulttolerance demonstrates the Sec. 4.2 resilience protocol end to end:
// a study where groups crash, hang and go zombie, and the server itself is
// killed mid-run and restarted from its checkpoint — and the final Sobol'
// statistics still match a clean reference run exactly, thanks to the
// discard-on-replay policy.
//
// A third phase turns the faults on the network itself: a seeded chaos plan
// cuts connections mid-stream (losing their unacknowledged tails), duplicates
// frames and injects latency, and the client-side reconnect layer absorbs
// every fault in place — reconnect, resume from the server's fold frontier,
// resend only the lost window — with zero group restarts.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"melissa/internal/client"
	"melissa/internal/core"
	"melissa/internal/faults"
	"melissa/internal/launcher"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/transport"
)

const (
	cells     = 64
	timesteps = 5
	nGroups   = 16
)

// sim is a deterministic toy solver (determinism is what makes restarted
// groups replayable; Sec. 4.2.1 discusses the non-deterministic case).
func sim(row []float64, emit func(step int, field []float64) bool) {
	field := make([]float64, cells)
	for t := 0; t < timesteps; t++ {
		for c := range field {
			field[c] = math.Sin(row[0]*float64(c+1)) + row[1]*float64(t+1)*0.2
		}
		time.Sleep(4 * time.Millisecond) // leave room for mid-study faults
		if !emit(t, field) {
			return
		}
	}
}

func run(plan *faults.Plan, ckptDir string, net transport.Network, retry client.RetryPolicy) (*server.Result, launcher.Stats) {
	design := sampling.NewDesign([]sampling.Distribution{
		sampling.Uniform{Low: -1, High: 1},
		sampling.Uniform{Low: -1, High: 1},
	}, nGroups, 7)
	if net == nil {
		net = transport.NewMemNetwork(transport.Options{})
	}
	cfg := launcher.Config{
		Design:        design,
		Sim:           client.SimFunc(sim),
		Cells:         cells,
		Timesteps:     timesteps,
		SimRanks:      2,
		Stats:         core.Options{MinMax: true},
		Network:       net,
		ServerProcs:   2,
		GroupTimeout:  250 * time.Millisecond,
		ZombieTimeout: 250 * time.Millisecond,
		Faults:        plan,
		Retry:         retry,
		TickInterval:  2 * time.Millisecond,
	}
	if ckptDir != "" {
		cfg.CheckpointDir = ckptDir
		cfg.CheckpointInterval = 30 * time.Millisecond
		cfg.HeartbeatTimeout = 250 * time.Millisecond
	}
	l, err := launcher.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res, stats
}

// compareToClean verifies the discard-on-replay exactness contract: same
// group coverage per timestep, first-order Sobol' fields within tolerance.
func compareToClean(clean, faulty *server.Result) float64 {
	worst := 0.0
	for step := 0; step < timesteps; step++ {
		if clean.GroupsFolded(step) != faulty.GroupsFolded(step) {
			log.Fatalf("step %d: %d vs %d groups folded", step,
				clean.GroupsFolded(step), faulty.GroupsFolded(step))
		}
		for k := 0; k < 2; k++ {
			a := clean.FirstField(step, k)
			b := faulty.FirstField(step, k)
			for c := range a {
				if d := math.Abs(a[c] - b[c]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

func main() {
	fmt.Println("== reference run (no faults) ==")
	clean, cleanStats := run(nil, "", nil, client.RetryPolicy{})
	fmt.Printf("  %d groups finished in %v\n", cleanStats.GroupsFinished, cleanStats.WallClock.Round(time.Millisecond))

	fmt.Println("\n== faulty run: crashes + straggler + zombie + server crash ==")
	plan := faults.NewPlan(
		faults.GroupFault{Group: 2, Attempt: 0, Kind: faults.Crash, AtStep: 1},
		faults.GroupFault{Group: 5, Attempt: 0, Kind: faults.Crash, AtStep: 3},
		faults.GroupFault{Group: 5, Attempt: 1, Kind: faults.Crash, AtStep: 0},
		faults.GroupFault{Group: 9, Attempt: 0, Kind: faults.Hang, AtStep: 2, HangFor: 5 * time.Second},
		faults.GroupFault{Group: 12, Attempt: 0, Kind: faults.Zombie},
	).WithServerCrash(150 * time.Millisecond)

	faulty, stats := run(plan, "out/faulttolerance-ckpt", nil, client.RetryPolicy{})
	fmt.Printf("  groups finished:  %d\n", stats.GroupsFinished)
	fmt.Printf("  group restarts:   %d (crash/hang retries)\n", stats.Restarts)
	fmt.Printf("  timeout kills:    %d (straggler detection, Sec. 4.2.2)\n", stats.TimeoutKills)
	fmt.Printf("  zombie kills:     %d (no-contact detection, Sec. 4.2.2)\n", stats.ZombieKills)
	fmt.Printf("  server restarts:  %d (checkpoint recovery, Sec. 4.2.3)\n", stats.ServerRestarts)
	fmt.Printf("  wall clock:       %v\n", stats.WallClock.Round(time.Millisecond))

	fmt.Println("\n== exactness check: faulty statistics vs clean statistics ==")
	worst := compareToClean(clean, faulty)
	fmt.Printf("  every timestep folded all %d groups exactly once\n", nGroups)
	fmt.Printf("  max |S_faulty - S_clean| over all cells/steps/params: %.2e\n", worst)
	if worst > 1e-9 {
		log.Fatal("  FAILED: replayed messages leaked into the statistics")
	}
	fmt.Println("  discard-on-replay kept the statistics exact despite every failure")

	fmt.Println("\n== durable-resume run: server crash resumes groups, no replay ==")
	// Same server kill as above, but now every group carries a reconnect
	// budget. Instead of killing and replaying the survivors, the launcher
	// keeps their jobs alive across the restart: each one reconnects to the
	// rebound addresses, aligns with the restored durable frontier, and
	// resends only the retained steps past it.
	// The crash must land while the streams are live: without the replay
	// stragglers of the phase above this study is over in ~50 ms.
	durable, durStats := run(faults.NewPlan().WithServerCrash(25*time.Millisecond),
		"out/faulttolerance-durable", nil, client.RetryPolicy{
			MaxReconnects: 16,
			BaseDelay:     2 * time.Millisecond,
			MaxDelay:      20 * time.Millisecond,
			AckTimeout:    100 * time.Millisecond,
			Seed:          3,
		})
	fmt.Printf("  server restarts:  %d\n", durStats.ServerRestarts)
	fmt.Printf("  groups resumed:   %d (kept alive across the restart)\n", durStats.ResumesAfterServerRestart)
	fmt.Printf("  group restarts:   %d (full replays)\n", durStats.Restarts)
	fmt.Printf("  reconnects:       %d\n", durStats.Reconnects)
	fmt.Printf("  wall clock:       %v\n", durStats.WallClock.Round(time.Millisecond))
	if durStats.ServerRestarts < 1 {
		log.Fatalf("  FAILED: the server crash never fired: %+v", durStats)
	}
	if durStats.GroupsFinished != nGroups || durStats.GroupsGivenUp != 0 {
		log.Fatalf("  FAILED: durable-resume study incomplete: %+v", durStats)
	}
	if durStats.Restarts != 0 || durStats.TimeoutKills != 0 {
		log.Fatalf("  FAILED: the server crash escalated to group replays: %+v", durStats)
	}
	if durStats.ResumesAfterServerRestart < 1 {
		log.Fatalf("  FAILED: no group was kept alive across the restart: %+v", durStats)
	}
	worst = compareToClean(clean, durable)
	fmt.Printf("  max |S_durable - S_clean|: %.2e\n", worst)
	if worst > 1e-9 {
		log.Fatal("  FAILED: resumed groups leaked duplicate folds into the statistics")
	}
	fmt.Println("  the crash cost a resume, not a replay — statistics still exact")

	fmt.Println("\n== chaos run: network cuts, lost tails, duplicates and latency ==")
	// A seeded chaos plan over the study's transport. Dial ordinals >= 2 only
	// ever match client connections (the launcher report inbox is dialed once
	// per server process, handshake reply inboxes exactly once), and every
	// dial to the second server process is a data connection — so the cuts
	// are guaranteed to break live field streams. The reconnect budget must
	// absorb all of it: no group restart, no timeout kill, no give-up.
	chaosNet := transport.NewChaosNetwork(transport.NewMemNetwork(transport.Options{}), transport.ChaosPlan{
		Seed: 2017,
		Rules: []transport.ChaosRule{
			{Dial: 3, CutAfterFrames: 4, DropTailFrames: 1},
			{Dial: 5, CutAfterFrames: 2},
			{Dial: 8, DuplicateFrame: 3},
			{Dial: 11, Latency: time.Millisecond},
		},
	})
	chaotic, chaosStats := run(nil, "", chaosNet, client.RetryPolicy{
		MaxReconnects: 4,
		BaseDelay:     2 * time.Millisecond,
		MaxDelay:      20 * time.Millisecond,
		Seed:          1,
	})
	injected := chaosNet.Stats()
	fmt.Printf("  faults injected:  %d cuts, %d frames dropped, %d duplicated, %d delayed\n",
		injected.Cuts, injected.Dropped, injected.Duplicated, injected.Delayed)
	fmt.Printf("  reconnects:       %d (resume + windowed resend, no replays)\n", chaosStats.Reconnects)
	fmt.Printf("  group restarts:   %d\n", chaosStats.Restarts)
	fmt.Printf("  wall clock:       %v\n", chaosStats.WallClock.Round(time.Millisecond))
	if chaosStats.GroupsFinished != nGroups || chaosStats.GroupsGivenUp != 0 {
		log.Fatalf("  FAILED: chaos study incomplete: %+v", chaosStats)
	}
	if chaosStats.Restarts != 0 || chaosStats.TimeoutKills != 0 {
		log.Fatalf("  FAILED: recoverable network faults escalated to replays: %+v", chaosStats)
	}
	if chaosStats.Reconnects == 0 || injected.Cuts == 0 {
		log.Fatal("  FAILED: chaos plan injected nothing — the test proved nothing")
	}
	worst = compareToClean(clean, chaotic)
	fmt.Printf("  max |S_chaos - S_clean|: %.2e\n", worst)
	if worst > 1e-9 {
		log.Fatal("  FAILED: reconnect resends leaked into the statistics")
	}
	fmt.Println("  the reconnect layer healed every network fault in place")
}
