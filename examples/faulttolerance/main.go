// Faulttolerance demonstrates the Sec. 4.2 resilience protocol end to end:
// a study where groups crash, hang and go zombie, and the server itself is
// killed mid-run and restarted from its checkpoint — and the final Sobol'
// statistics still match a clean reference run exactly, thanks to the
// discard-on-replay policy.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"melissa/internal/client"
	"melissa/internal/core"
	"melissa/internal/faults"
	"melissa/internal/launcher"
	"melissa/internal/sampling"
	"melissa/internal/server"
	"melissa/internal/transport"
)

const (
	cells     = 64
	timesteps = 5
	nGroups   = 16
)

// sim is a deterministic toy solver (determinism is what makes restarted
// groups replayable; Sec. 4.2.1 discusses the non-deterministic case).
func sim(row []float64, emit func(step int, field []float64) bool) {
	field := make([]float64, cells)
	for t := 0; t < timesteps; t++ {
		for c := range field {
			field[c] = math.Sin(row[0]*float64(c+1)) + row[1]*float64(t+1)*0.2
		}
		time.Sleep(4 * time.Millisecond) // leave room for mid-study faults
		if !emit(t, field) {
			return
		}
	}
}

func run(plan *faults.Plan, ckptDir string) (*server.Result, launcher.Stats) {
	design := sampling.NewDesign([]sampling.Distribution{
		sampling.Uniform{Low: -1, High: 1},
		sampling.Uniform{Low: -1, High: 1},
	}, nGroups, 7)
	cfg := launcher.Config{
		Design:        design,
		Sim:           client.SimFunc(sim),
		Cells:         cells,
		Timesteps:     timesteps,
		SimRanks:      2,
		Stats:         core.Options{MinMax: true},
		Network:       transport.NewMemNetwork(transport.Options{}),
		ServerProcs:   2,
		GroupTimeout:  250 * time.Millisecond,
		ZombieTimeout: 250 * time.Millisecond,
		Faults:        plan,
		TickInterval:  2 * time.Millisecond,
	}
	if ckptDir != "" {
		cfg.CheckpointDir = ckptDir
		cfg.CheckpointInterval = 30 * time.Millisecond
		cfg.HeartbeatTimeout = 250 * time.Millisecond
	}
	l, err := launcher.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res, stats
}

func main() {
	fmt.Println("== reference run (no faults) ==")
	clean, cleanStats := run(nil, "")
	fmt.Printf("  %d groups finished in %v\n", cleanStats.GroupsFinished, cleanStats.WallClock.Round(time.Millisecond))

	fmt.Println("\n== faulty run: crashes + straggler + zombie + server crash ==")
	plan := faults.NewPlan(
		faults.GroupFault{Group: 2, Attempt: 0, Kind: faults.Crash, AtStep: 1},
		faults.GroupFault{Group: 5, Attempt: 0, Kind: faults.Crash, AtStep: 3},
		faults.GroupFault{Group: 5, Attempt: 1, Kind: faults.Crash, AtStep: 0},
		faults.GroupFault{Group: 9, Attempt: 0, Kind: faults.Hang, AtStep: 2, HangFor: 5 * time.Second},
		faults.GroupFault{Group: 12, Attempt: 0, Kind: faults.Zombie},
	).WithServerCrash(150 * time.Millisecond)

	faulty, stats := run(plan, "out/faulttolerance-ckpt")
	fmt.Printf("  groups finished:  %d\n", stats.GroupsFinished)
	fmt.Printf("  group restarts:   %d (crash/hang retries)\n", stats.Restarts)
	fmt.Printf("  timeout kills:    %d (straggler detection, Sec. 4.2.2)\n", stats.TimeoutKills)
	fmt.Printf("  zombie kills:     %d (no-contact detection, Sec. 4.2.2)\n", stats.ZombieKills)
	fmt.Printf("  server restarts:  %d (checkpoint recovery, Sec. 4.2.3)\n", stats.ServerRestarts)
	fmt.Printf("  wall clock:       %v\n", stats.WallClock.Round(time.Millisecond))

	fmt.Println("\n== exactness check: faulty statistics vs clean statistics ==")
	worst := 0.0
	for step := 0; step < timesteps; step++ {
		if clean.GroupsFolded(step) != faulty.GroupsFolded(step) {
			log.Fatalf("step %d: %d vs %d groups folded", step,
				clean.GroupsFolded(step), faulty.GroupsFolded(step))
		}
		for k := 0; k < 2; k++ {
			a := clean.FirstField(step, k)
			b := faulty.FirstField(step, k)
			for c := range a {
				if d := math.Abs(a[c] - b[c]); d > worst {
					worst = d
				}
			}
		}
	}
	fmt.Printf("  every timestep folded all %d groups exactly once\n", nGroups)
	fmt.Printf("  max |S_faulty - S_clean| over all cells/steps/params: %.2e\n", worst)
	if worst > 1e-9 {
		log.Fatal("  FAILED: replayed messages leaked into the statistics")
	}
	fmt.Println("  discard-on-replay kept the statistics exact despite every failure")
}
