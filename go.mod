module melissa

go 1.24
