// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index). Each benchmark runs the
// corresponding experiment and publishes the paper's headline quantities as
// custom metrics, so `go test -bench=.` prints the same rows/series the
// paper reports. CSV series land under out/bench/ (written once).
//
//	go test -bench=Fig6 -benchmem .
//	go test -bench=. -benchmem ./...
package melissa

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"melissa/internal/checkpoint"
	"melissa/internal/core"
	"melissa/internal/des"
	"melissa/internal/enc"
	"melissa/internal/harness"
	"melissa/internal/sobol"
)

// writeSeriesOnce dumps a DES series to CSV the first time a bench runs.
var seriesOnce sync.Once

func writeFig6Series(r15, r32 *des.Result) {
	seriesOnce.Do(func() {
		for _, tc := range []struct {
			name string
			r    *des.Result
		}{{"fig6ab_15nodes", r15}, {"fig6cd_32nodes", r32}} {
			rows := make([][]float64, len(tc.r.Series))
			for i, s := range tc.r.Series {
				rows[i] = []float64{s.T, float64(s.RunningGroups), float64(s.Cores),
					s.InstantExec, tc.r.ClassicalGroupSeconds, tc.r.NoOutputGroupSeconds}
			}
			harness.WriteCSV("out/bench/"+tc.name+".csv",
				[]string{"t", "groups", "cores", "melissa_exec", "classical", "no_output"}, rows)
		}
	})
}

// BenchmarkFig6aServer15Nodes replays the first Curie study (server on 15
// nodes) and reports the Fig. 6a elasticity series' peaks.
func BenchmarkFig6aServer15Nodes(b *testing.B) {
	var r *des.Result
	for i := 0; i < b.N; i++ {
		r = des.Run(des.CurieStudy(15))
	}
	b.ReportMetric(float64(r.PeakGroups), "peak-groups")
	b.ReportMetric(float64(r.PeakCores), "peak-cores")
	b.ReportMetric(r.WallClockSeconds, "wallclock-s")
	r32 := des.Run(des.CurieStudy(32))
	writeFig6Series(r, r32)
}

// BenchmarkFig6bExecTime15Nodes reports the Fig. 6b saturation: the worst
// instantaneous group exec time versus the classical and no-output
// baselines (the paper observed "up to doubling").
func BenchmarkFig6bExecTime15Nodes(b *testing.B) {
	var r *des.Result
	for i := 0; i < b.N; i++ {
		r = des.Run(des.CurieStudy(15))
	}
	worst := 0.0
	for _, s := range r.Series {
		if s.InstantExec > worst {
			worst = s.InstantExec
		}
	}
	b.ReportMetric(worst, "melissa-worst-s")
	b.ReportMetric(r.ClassicalGroupSeconds, "classical-s")
	b.ReportMetric(r.NoOutputGroupSeconds, "no-output-s")
	b.ReportMetric(worst/r.NoOutputGroupSeconds, "slowdown-x")
}

// BenchmarkFig6cServer32Nodes replays the second study (32 server nodes).
func BenchmarkFig6cServer32Nodes(b *testing.B) {
	var r *des.Result
	for i := 0; i < b.N; i++ {
		r = des.Run(des.CurieStudy(32))
	}
	b.ReportMetric(float64(r.PeakGroups), "peak-groups")
	b.ReportMetric(float64(r.PeakCores), "peak-cores")
	b.ReportMetric(r.WallClockSeconds, "wallclock-s")
}

// BenchmarkFig6dExecTime32Nodes reports the unsaturated regime of Fig. 6d:
// Melissa between no-output (+18.5%) and classical (−13%).
func BenchmarkFig6dExecTime32Nodes(b *testing.B) {
	var r *des.Result
	for i := 0; i < b.N; i++ {
		r = des.Run(des.CurieStudy(32))
	}
	b.ReportMetric(r.MeanGroupSeconds, "melissa-mean-s")
	b.ReportMetric(r.ClassicalGroupSeconds, "classical-s")
	b.ReportMetric(r.NoOutputGroupSeconds, "no-output-s")
	b.ReportMetric(100*(r.MeanGroupSeconds/r.NoOutputGroupSeconds-1), "overhead-vs-noout-pct")
	b.ReportMetric(100*(1-r.MeanGroupSeconds/r.ClassicalGroupSeconds), "gain-vs-classical-pct")
}

// BenchmarkSec53StudySummary reproduces the Sec. 5.3 aggregate rows.
func BenchmarkSec53StudySummary(b *testing.B) {
	var r15, r32 *des.Result
	for i := 0; i < b.N; i++ {
		r15 = des.Run(des.CurieStudy(15))
		r32 = des.Run(des.CurieStudy(32))
	}
	b.ReportMetric(r15.WallClockSeconds, "study1-wall-s")
	b.ReportMetric(r32.WallClockSeconds, "study2-wall-s")
	b.ReportMetric(r15.WallClockSeconds/r32.WallClockSeconds, "speedup-x")
	b.ReportMetric(r15.SimCPUHours, "study1-sim-cpuh")
	b.ReportMetric(r32.SimCPUHours, "study2-sim-cpuh")
	b.ReportMetric(r15.ServerCPUPercent, "study1-server-pct")
	b.ReportMetric(r32.ServerCPUPercent, "study2-server-pct")
	b.ReportMetric(r32.DataBytes/1e12, "data-avoided-TB")
	b.ReportMetric(r32.MsgsPerMinPerProc, "msgs-per-min-per-proc")
	b.ReportMetric(float64(r32.ServerMemoryBytes)/1e9, "server-memory-GB")
}

// BenchmarkSec54FaultTolerance measures the live checkpoint path (write,
// read/restore) at the paper's full per-process state size (9.6M cells over
// 512 server processes), and reports the cadence-overhead model.
func BenchmarkSec54FaultTolerance(b *testing.B) {
	const cells, steps, p = 9603840 / 512, 100, 6
	acc := core.NewAccumulator(cells, steps, p, core.Options{})
	dir := b.TempDir()
	path := checkpoint.Filename(dir, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checkpoint.Write(path, func(w *enc.Writer) { acc.Encode(w) }); err != nil {
			b.Fatal(err)
		}
		r, _, err := checkpoint.Read(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DecodeAccumulator(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(info.Size())/1e6, "ckpt-MB")
	cfg := des.CurieStudy(32)
	b.ReportMetric(100*cfg.CheckpointPauseSeconds/cfg.CheckpointPeriodSeconds, "overhead-pct")
}

// benchTubeBundle runs one live tube-bundle study (shared by the Fig. 7 and
// Fig. 8 benches).
func benchTubeBundle(b *testing.B, groups int) *FieldResult {
	b.Helper()
	study, _, err := TubeBundleStudy(48, 16, groups, 2017)
	if err != nil {
		b.Fatal(err)
	}
	study.ServerProcs = 2
	study.SimRanks = 2
	res, stats, err := RunStudy(study)
	if err != nil {
		b.Fatal(err)
	}
	if stats.GroupsFinished != groups {
		b.Fatalf("finished %d of %d", stats.GroupsFinished, groups)
	}
	return res
}

// BenchmarkFig7SobolMaps runs the live use case end to end and reports the
// quantitative content of the Fig. 7 interpretation: cross-influence of
// upper parameters on the lower half, and the duration left/right contrast.
func BenchmarkFig7SobolMaps(b *testing.B) {
	var res *FieldResult
	for i := 0; i < b.N; i++ {
		res = benchTubeBundle(b, 64)
	}
	const step, nx, ny = 79, 48, 16
	mean := func(field []float64, keep func(ix, iy int) bool) float64 {
		var sum float64
		n := 0
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				if keep(ix, iy) {
					sum += math.Abs(field[ix+iy*nx])
					n++
				}
			}
		}
		return sum / float64(n)
	}
	kc, _ := TubeBundleParamIndex("conc-upper")
	kd, _ := TubeBundleParamIndex("dur-upper")
	sc := res.First(step, kc)
	sd := res.First(step, kd)
	b.ReportMetric(mean(sc, func(ix, iy int) bool { return iy < ny/4 }), "conc-up-S-bottom")
	b.ReportMetric(mean(sc, func(ix, iy int) bool { return iy >= ny/2 }), "conc-up-S-top")
	b.ReportMetric(mean(sd, func(ix, iy int) bool { return iy >= ny/2 && ix < nx/4 }), "dur-up-S-left")
	b.ReportMetric(mean(sd, func(ix, iy int) bool { return iy >= ny/2 && ix >= 3*nx/4 }), "dur-up-S-right")
}

// BenchmarkFig8VarianceMap reports the variance-map contrast of Fig. 8.
func BenchmarkFig8VarianceMap(b *testing.B) {
	var res *FieldResult
	for i := 0; i < b.N; i++ {
		res = benchTubeBundle(b, 48)
	}
	variance := res.Variance(79)
	maxVar, sum := 0.0, 0.0
	for _, v := range variance {
		sum += v
		if v > maxVar {
			maxVar = v
		}
	}
	b.ReportMetric(maxVar, "max-variance")
	b.ReportMetric(sum/float64(len(variance)), "mean-variance")
}

// BenchmarkSec34Convergence streams Ishigami groups through the Martinez
// estimator and reports the Eq. 8 interval width at n = 1024 and 4096.
func BenchmarkSec34Convergence(b *testing.B) {
	fn := sobol.Ishigami()
	var w1024, w4096 float64
	for i := 0; i < b.N; i++ {
		m := sobol.NewMartinez(fn.P())
		sobol.Estimate(fn, 1024, 42, m)
		w1024 = m.FirstCI(0, 0.95).Width()
		sobol.Estimate(fn, 3072, 43, m)
		w4096 = m.FirstCI(0, 0.95).Width()
	}
	b.ReportMetric(w1024, "ci-width-n1024")
	b.ReportMetric(w4096, "ci-width-n4096")
	b.ReportMetric(w1024/w4096, "shrink-4x-expected-2x")
}

// BenchmarkAblationEstimators compares Martinez (the paper's choice),
// Jansen and Saltelli on Ishigami at n = 4096: accuracy and update cost.
func BenchmarkAblationEstimators(b *testing.B) {
	fn := sobol.Ishigami()
	for _, name := range []string{"martinez", "jansen", "saltelli"} {
		b.Run(name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				est, err := sobol.NewEstimator(name, fn.P())
				if err != nil {
					b.Fatal(err)
				}
				sobol.Estimate(fn, 4096, 7, est)
				worst = 0
				for k := 0; k < fn.P(); k++ {
					if d := math.Abs(est.First(k) - fn.ExactFirst[k]); d > worst {
						worst = d
					}
					if d := math.Abs(est.Total(k) - fn.ExactTotal[k]); d > worst {
						worst = d
					}
				}
			}
			b.ReportMetric(worst, "max-abs-error")
		})
	}
}

// BenchmarkAblationServerNodes sweeps the server size around the paper's
// two operating points (15 saturated, 32 unsaturated).
func BenchmarkAblationServerNodes(b *testing.B) {
	for _, nodes := range []int{8, 15, 32, 64} {
		b.Run(fmt.Sprintf("nodes-%d", nodes), func(b *testing.B) {
			var r *des.Result
			for i := 0; i < b.N; i++ {
				r = des.Run(des.CurieStudy(nodes))
			}
			b.ReportMetric(r.WallClockSeconds, "wallclock-s")
			sat := 0.0
			if r.Saturated {
				sat = 1
			}
			b.ReportMetric(sat, "saturated")
		})
	}
}

// BenchmarkAblationTwoPhase compares the one-pass in-transit pipeline with
// the two-phase burst-buffer alternative dismissed in Sec. 5.3.
func BenchmarkAblationTwoPhase(b *testing.B) {
	var one, two *des.Result
	for i := 0; i < b.N; i++ {
		one = des.Run(des.CurieStudy(32))
		two = des.TwoPhase(des.CurieStudy(32))
	}
	b.ReportMetric(one.WallClockSeconds, "one-pass-s")
	b.ReportMetric(two.WallClockSeconds, "two-phase-s")
	b.ReportMetric(two.WallClockSeconds/one.WallClockSeconds, "two-phase-slowdown-x")
}

// BenchmarkEndToEndStudyThroughput measures the full framework's group
// throughput on a synthetic field study (messages through the real
// client/server path, in-memory transport). Variants sweep the server fold
// worker-pool width and the client wire batching; "fold1-batch1" is the
// pre-pipeline baseline.
func BenchmarkEndToEndStudyThroughput(b *testing.B) {
	for _, bc := range []struct {
		name        string
		foldWorkers int
		batchSteps  int
	}{
		{"fold1-batch1", 1, 1},
		{"fold4-batch1", 4, 1},
		{"fold4-batch4", 4, 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchEndToEndStudy(b, bc.foldWorkers, bc.batchSteps)
		})
	}
}

func benchEndToEndStudy(b *testing.B, foldWorkers, batchSteps int) {
	const cells, timesteps, groups = 512, 4, 32
	for i := 0; i < b.N; i++ {
		cfg := StudyConfig{
			Parameters: []Distribution{Uniform{Low: -1, High: 1}, Uniform{Low: -1, High: 1}},
			Groups:     groups,
			Seed:       uint64(i),
			Cells:      cells,
			Timesteps:  timesteps,
			Simulation: SimFunc(func(row []float64, emit func(int, []float64) bool) {
				f := make([]float64, cells)
				for t := 0; t < timesteps; t++ {
					for c := range f {
						f[c] = row[0]*float64(c) + row[1]
					}
					if !emit(t, f) {
						return
					}
				}
			}),
			ServerProcs: 2,
			SimRanks:    2,
			FoldWorkers: foldWorkers,
			BatchSteps:  batchSteps,
		}
		if _, _, err := RunStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(groups*timesteps*b.N)/b.Elapsed().Seconds(), "group-steps/s")
}
